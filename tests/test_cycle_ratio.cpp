#include <gtest/gtest.h>

#include <functional>
#include <vector>

#include "graph/cycle_ratio.hpp"
#include "model/generator.hpp"
#include "model/gmf.hpp"
#include "model/sporadic.hpp"
#include "testutil.hpp"

namespace strt {
namespace {

TEST(SimplestBetween, FindsSimplestRational) {
  using detail::simplest_between;
  EXPECT_EQ(simplest_between(Rational(0), Rational(2)), Rational(1));
  EXPECT_EQ(simplest_between(Rational(0), Rational(1)), Rational(1, 2));
  EXPECT_EQ(simplest_between(Rational(1, 3), Rational(1, 2)),
            Rational(2, 5));
  EXPECT_EQ(simplest_between(Rational(3, 7), Rational(4, 7)),
            Rational(1, 2));
  // (13/9, 31/21) ~ (1.444, 1.476): no denominator <= 10 fits; 16/11 does.
  EXPECT_EQ(simplest_between(Rational(13, 9), Rational(31, 21)),
            Rational(16, 11));
  // (1/1000, 1/999) contains no fraction with numerator 1; the simplest
  // inhabitant is 2/1999.
  EXPECT_EQ(simplest_between(Rational(1, 1000), Rational(1, 999)),
            Rational(2, 1999));
  EXPECT_THROW((void)simplest_between(Rational(1), Rational(1)),
               std::invalid_argument);
}

TEST(SimplestBetween, ExhaustiveSmallIntervals) {
  // For every pair lo < hi with denominators <= 12, the result must lie
  // strictly inside and no rational with a smaller denominator may.
  std::vector<Rational> values;
  for (int den = 1; den <= 12; ++den) {
    for (int num = 0; num <= 2 * den; ++num) {
      values.emplace_back(num, den);
    }
  }
  for (const Rational& lo : values) {
    for (const Rational& hi : values) {
      if (!(lo < hi)) continue;
      const Rational s = detail::simplest_between(lo, hi);
      EXPECT_LT(lo, s);
      EXPECT_LT(s, hi);
      for (int den = 1; den < s.den(); ++den) {
        for (std::int64_t num = lo.num() * den / lo.den();
             num <= hi.num() * den / hi.den() + 1; ++num) {
          const Rational cand(num, den);
          EXPECT_FALSE(lo < cand && cand < hi)
              << "simpler " << cand.to_string() << " inside ("
              << lo.to_string() << ", " << hi.to_string() << "), got "
              << s.to_string();
        }
      }
    }
  }
}

TEST(Utilization, SporadicIsWcetOverPeriod) {
  const SporadicTask sp{"s", Work(3), Time(7), Time(7)};
  const auto u = utilization(sp.to_drt());
  ASSERT_TRUE(u.has_value());
  EXPECT_EQ(*u, Rational(3, 7));
}

TEST(Utilization, GmfIsTotalRatioWhenUniform) {
  const GmfTask gmf("g", {GmfFrame{Work(2), Time(5), Time(5)},
                          GmfFrame{Work(3), Time(10), Time(10)},
                          GmfFrame{Work(1), Time(5), Time(5)}});
  const auto u = utilization(gmf.to_drt());
  ASSERT_TRUE(u.has_value());
  EXPECT_EQ(*u, Rational(6, 20));
}

TEST(Utilization, PicksTheWorstCycle) {
  // Two loops on A: a tight one via B (ratio (1+3)/(2+2)=1) and a loose
  // one via C (ratio (1+1)/(10+10)=0.1).
  DrtBuilder b("two");
  const VertexId a = b.add_vertex("A", Work(1), Time(1));
  const VertexId v = b.add_vertex("B", Work(3), Time(1));
  const VertexId c = b.add_vertex("C", Work(1), Time(1));
  b.add_edge(a, v, Time(2)).add_edge(v, a, Time(2));
  b.add_edge(a, c, Time(10)).add_edge(c, a, Time(10));
  const auto u = utilization(std::move(b).build());
  ASSERT_TRUE(u.has_value());
  EXPECT_EQ(*u, Rational(1));
}

TEST(Utilization, AcyclicHasNone) {
  DrtBuilder b("dag");
  const VertexId a = b.add_vertex("A", Work(5), Time(1));
  const VertexId v = b.add_vertex("B", Work(5), Time(1));
  b.add_edge(a, v, Time(1));
  EXPECT_FALSE(utilization(std::move(b).build()).has_value());
}

TEST(Utilization, SelfLoopOfOne) {
  DrtBuilder b("unit");
  const VertexId a = b.add_vertex("A", Work(1), Time(1));
  b.add_edge(a, a, Time(1));
  const auto u = utilization(std::move(b).build());
  ASSERT_TRUE(u.has_value());
  EXPECT_EQ(*u, Rational(1));
}

/// Brute-force max cycle ratio by enumerating simple cycles (DFS).
Rational brute_max_cycle_ratio(const DrtTask& task) {
  Rational best(0);
  std::vector<bool> on_path(task.vertex_count(), false);
  std::vector<VertexId> path;
  std::vector<Time> seps;
  bool found = false;
  std::function<void(VertexId)> dfs = [&](VertexId v) {
    for (std::int32_t ei : task.out_edges(v)) {
      const DrtEdge& e = task.edges()[static_cast<std::size_t>(ei)];
      if (on_path[static_cast<std::size_t>(e.to)]) {
        // Close the cycle at e.to if it is on the current path.
        auto it = std::find(path.begin(), path.end(), e.to);
        std::int64_t work = 0;
        std::int64_t sep = e.separation.count();
        for (auto p = it; p != path.end(); ++p) {
          work += task.vertex(*p).wcet.count();
          if (p + 1 != path.end()) {
            sep += seps[static_cast<std::size_t>(p - path.begin())].count();
          }
        }
        const Rational ratio(work, sep);
        if (!found || best < ratio) best = ratio;
        found = true;
        continue;
      }
      on_path[static_cast<std::size_t>(e.to)] = true;
      path.push_back(e.to);
      seps.push_back(e.separation);
      dfs(e.to);
      seps.pop_back();
      path.pop_back();
      on_path[static_cast<std::size_t>(e.to)] = false;
    }
  };
  for (VertexId v = 0; static_cast<std::size_t>(v) < task.vertex_count();
       ++v) {
    on_path[static_cast<std::size_t>(v)] = true;
    path.push_back(v);
    dfs(v);
    path.pop_back();
    on_path[static_cast<std::size_t>(v)] = false;
  }
  return best;
}

TEST(Utilization, MatchesBruteForceOnRandomGraphs) {
  Rng rng(606);
  for (int trial = 0; trial < 30; ++trial) {
    DrtGenParams params;
    params.min_vertices = 3;
    params.max_vertices = 6;
    params.min_separation = Time(1);
    params.max_separation = Time(12);
    params.chord_probability = 0.25;
    params.target_utilization = 0.5;
    const DrtTask task = random_drt(rng, params).task;
    const auto u = utilization(task);
    ASSERT_TRUE(u.has_value());
    EXPECT_EQ(*u, brute_max_cycle_ratio(task)) << "trial " << trial;
  }
}

}  // namespace
}  // namespace strt
