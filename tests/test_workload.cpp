#include <gtest/gtest.h>

#include <functional>

#include "graph/workload.hpp"
#include "model/gmf.hpp"
#include "model/sporadic.hpp"
#include "testutil.hpp"

namespace strt {
namespace {

TEST(Rbf, SporadicMatchesClosedForm) {
  for (const auto& [wcet, period] :
       {std::pair{2, 5}, {1, 1}, {4, 9}, {3, 20}}) {
    const SporadicTask sp{"s", Work(wcet), Time(period), Time(period)};
    const Time horizon(100);
    const Staircase graph_rbf = rbf(sp.to_drt(), horizon);
    const Staircase closed = sp.rbf_closed_form(horizon);
    for (std::int64_t t = 0; t <= horizon.count(); ++t) {
      EXPECT_EQ(graph_rbf.value(Time(t)), closed.value(Time(t)))
          << "C=" << wcet << " T=" << period << " t=" << t;
    }
  }
}

TEST(Rbf, SmallTaskHandChecked) {
  // small_task: A(4) -3-> B(1) -5-> C(2) -6-> A; A -4-> D(3) -7-> A.
  const DrtTask task = test::small_task();
  const Staircase f = rbf(task, Time(16));
  EXPECT_EQ(f.value(Time(0)), Work(0));
  EXPECT_EQ(f.value(Time(1)), Work(4));   // just A
  EXPECT_EQ(f.value(Time(4)), Work(5));   // A,B (span 3)
  EXPECT_EQ(f.value(Time(5)), Work(7));   // A,D (span 4)
  EXPECT_EQ(f.value(Time(9)), Work(7));   // A,B,C (span 8): 4+1+2
  // Span <= 11 candidates: A,D,A (4+7=11) -> 4+3+4 = 11;
  // D,A,D (7+4=11) -> 10; D,A,B (7+3=10) -> 8; C,A,D (6+4=10) -> 9.
  EXPECT_EQ(f.value(Time(12)), Work(11));
}

TEST(Rbf, IsSubadditive) {
  // rbf of any DRT task is subadditive: a window of length s+t splits
  // into two windows whose contents are separately feasible.
  const Staircase f = rbf(test::small_task(), Time(60));
  EXPECT_TRUE(f.is_subadditive());
}

TEST(Rbf, MonotoneAndZeroAtZero) {
  const Staircase f = rbf(test::small_task(), Time(50));
  EXPECT_EQ(f.value(Time(0)), Work(0));
  Work prev(0);
  for (std::int64_t t = 1; t <= 50; ++t) {
    EXPECT_GE(f.value(Time(t)), prev);
    prev = f.value(Time(t));
  }
}

TEST(Rbf, GmfRing) {
  // Two frames: (e=3, sep=10), (e=1, sep=2).  Densest window: frame1 at
  // 0, frame0 at 2 -> work 4 within window 3.
  const GmfTask gmf("g", {GmfFrame{Work(3), Time(10), Time(10)},
                          GmfFrame{Work(1), Time(2), Time(2)}});
  const Staircase f = rbf(gmf.to_drt(), Time(30));
  EXPECT_EQ(f.value(Time(1)), Work(3));
  EXPECT_EQ(f.value(Time(3)), Work(4));
  EXPECT_EQ(f.value(Time(13)), Work(7));  // frame1,frame0,frame1: span 12
  EXPECT_EQ(gmf.total_wcet(), Work(4));
  EXPECT_EQ(gmf.total_separation(), Time(12));
}

TEST(Dbf, SporadicMatchesClosedForm) {
  for (const auto& [wcet, period, deadline] :
       {std::tuple{2, 5, 5}, {1, 4, 2}, {3, 10, 7}}) {
    const SporadicTask sp{"s", Work(wcet), Time(period), Time(deadline)};
    const Time horizon(80);
    const Staircase graph_dbf = dbf(sp.to_drt(), horizon);
    const Staircase closed = sp.dbf_closed_form(horizon);
    for (std::int64_t t = 0; t <= horizon.count(); ++t) {
      EXPECT_EQ(graph_dbf.value(Time(t)), closed.value(Time(t)))
          << "C=" << wcet << " T=" << period << " D=" << deadline
          << " t=" << t;
    }
  }
}

TEST(Dbf, PointMatchesStaircaseOnFrameSeparatedTasks) {
  DrtBuilder b("fs");
  const VertexId a = b.add_vertex("A", Work(2), Time(4));
  const VertexId c = b.add_vertex("B", Work(3), Time(5));
  const VertexId d = b.add_vertex("C", Work(1), Time(2));
  b.add_edge(a, c, Time(4)).add_edge(c, d, Time(6)).add_edge(d, a, Time(3));
  b.add_edge(a, d, Time(5));
  const DrtTask task = std::move(b).build();
  ASSERT_TRUE(task.has_frame_separation());
  const Staircase f = dbf(task, Time(50));
  for (std::int64_t t = 0; t <= 50; ++t) {
    EXPECT_EQ(f.value(Time(t)), dbf_point(task, Time(t))) << "t=" << t;
  }
}

TEST(Dbf, GeneralDeadlinesViaPointQuery) {
  // The counterexample to "count all jobs on the path": middle job with a
  // huge deadline, outer jobs tight.  dbf_point must count the qualifying
  // outer jobs even though the middle one does not qualify.
  DrtBuilder b("gen");
  const VertexId v1 = b.add_vertex("v1", Work(5), Time(2));
  const VertexId v2 = b.add_vertex("v2", Work(4), Time(1000));
  const VertexId v3 = b.add_vertex("v3", Work(6), Time(2));
  b.add_edge(v1, v2, Time(3)).add_edge(v2, v3, Time(3));
  b.add_edge(v3, v1, Time(3));
  const DrtTask task = std::move(b).build();
  ASSERT_FALSE(task.has_frame_separation());
  // Window t=8: v1@0 (d_abs 2), v2@3 (d_abs 1003), v3@6 (d_abs 8):
  // demand = 5 + 6 = 11.
  EXPECT_EQ(dbf_point(task, Time(8)), Work(11));
  // t=2: only v1 (or v3 alone): max(5, 6)... v3 alone has d_abs 2: 6.
  EXPECT_EQ(dbf_point(task, Time(2)), Work(6));
  EXPECT_EQ(dbf_point(task, Time(1)), Work(0));
  EXPECT_EQ(dbf_point(task, Time(0)), Work(0));
  // Staircase computation must refuse (not frame separated).
  EXPECT_THROW((void)dbf(task, Time(10)), std::invalid_argument);
}

TEST(Dbf, NeverExceedsRbf) {
  const DrtTask task = [] {
    DrtBuilder b("fs2");
    const VertexId a = b.add_vertex("A", Work(2), Time(3));
    const VertexId c = b.add_vertex("B", Work(4), Time(6));
    b.add_edge(a, c, Time(3)).add_edge(c, a, Time(7));
    return std::move(b).build();
  }();
  const Staircase demand = dbf(task, Time(60));
  const Staircase request = rbf(task, Time(60));
  for (std::int64_t t = 0; t <= 60; ++t) {
    EXPECT_LE(demand.value(Time(t)), request.value(Time(t))) << t;
  }
}

TEST(Rbf, ZeroHorizon) {
  const Staircase f = rbf(test::small_task(), Time(0));
  EXPECT_EQ(f.value(Time(0)), Work(0));
  EXPECT_EQ(f.horizon(), Time(0));
}

}  // namespace
}  // namespace strt
