// strt::check -- one seeded defective model per diagnostic code, clean
// models stay clean, and checking never perturbs analysis results.

#include <gtest/gtest.h>

#include <algorithm>
#include <functional>
#include <sstream>
#include <string>
#include <vector>

#include "check/check.hpp"
#include "engine/workspace.hpp"
#include "graph/workload.hpp"
#include "io/curve_csv.hpp"
#include "io/parse.hpp"
#include "model/gmf.hpp"
#include "model/recurring.hpp"
#include "model/sporadic.hpp"
#include "resource/supply.hpp"
#include "svc/request_stream.hpp"
#include "testutil.hpp"

namespace strt {
namespace {

using check::CheckResult;
using check::Severity;

/// One seeded defective model per diagnostic code.  `also` lists codes
/// that necessarily co-fire (e.g. an acyclic graph always has a dead
/// end); everything else appearing in the result is a test failure.
struct Trigger {
  std::string_view code;
  std::function<CheckResult()> fire;
  std::vector<std::string_view> also = {};
};

check::TaskSpec spec_of(std::vector<check::TaskSpec::Vertex> vs,
                        std::vector<check::TaskSpec::Edge> es) {
  check::TaskSpec s;
  s.name = "seeded";
  s.vertices = std::move(vs);
  s.edges = std::move(es);
  return s;
}

DrtTask self_loop_task(std::int64_t wcet, std::int64_t deadline,
                       std::int64_t sep) {
  DrtBuilder b("loop");
  const VertexId a = b.add_vertex("A", Work(wcet), Time(deadline));
  b.add_edge(a, a, Time(sep));
  return std::move(b).build();
}

std::vector<Trigger> triggers() {
  std::vector<Trigger> t;

  t.push_back({"curve.negative", [] {
                 const std::vector<Step> pts{Step{Time(-1), Work(2)}};
                 return check::check_curve_points(pts);
               }});
  t.push_back({"curve.non-monotone", [] {
                 const std::vector<Step> pts{Step{Time(1), Work(5)},
                                             Step{Time(2), Work(3)}};
                 return check::check_curve_points(pts);
               }});
  t.push_back({"curve.nonzero-origin", [] {
                 return check::check_arrival_curve(Staircase::from_points(
                     {Step{Time(0), Work(1)}}, Time(10)));
               }});
  t.push_back({"curve.unbounded-inverse", [] {
                 // No periodic tail: the pseudo-inverse is undefined past
                 // the horizon value.
                 return check::check_supply_curve(Staircase::from_points(
                     {Step{Time(1), Work(1)}}, Time(10)));
               }});

  t.push_back({"drt.acyclic",
               [] {
                 DrtBuilder b("dag");
                 const VertexId a = b.add_vertex("A", Work(1), Time(3));
                 const VertexId c = b.add_vertex("B", Work(1), Time(3));
                 b.add_edge(a, c, Time(5));
                 return check::check_task(std::move(b).build());
               },
               {"drt.dead-end"}});
  t.push_back({"drt.dangling-edge", [] {
                 return check::check_task_spec(spec_of(
                     {{"A", 1, 1}}, {{0, 5, 1}}));
               }});
  t.push_back({"drt.dead-end",
               [] {
                 DrtBuilder b("leaf");
                 const VertexId a = b.add_vertex("A", Work(1), Time(3));
                 const VertexId c = b.add_vertex("B", Work(1), Time(3));
                 b.add_edge(a, a, Time(10));
                 b.add_edge(a, c, Time(3));
                 return check::check_task(std::move(b).build());
               },
               // A vertex with no way out is also on no cycle.
               {"drt.transient"}});
  t.push_back({"drt.duplicate-vertex", [] {
                 return check::check_task_spec(
                     spec_of({{"A", 1, 1}, {"A", 1, 1}}, {}));
               }});
  t.push_back({"drt.empty",
               [] { return check::check_task_spec(spec_of({}, {})); }});
  t.push_back({"drt.nonpositive-deadline", [] {
                 return check::check_task_spec(spec_of({{"A", 1, 0}}, {}));
               }});
  t.push_back({"drt.nonpositive-separation", [] {
                 return check::check_task_spec(spec_of(
                     {{"A", 1, 1}, {"B", 1, 1}}, {{0, 1, 0}}));
               }});
  t.push_back({"drt.nonpositive-wcet", [] {
                 return check::check_task_spec(spec_of({{"A", 0, 1}}, {}));
               }});
  t.push_back({"drt.not-frame-separated",
               [] {
                 DrtBuilder b("late");
                 const VertexId a = b.add_vertex("A", Work(2), Time(12));
                 const VertexId c = b.add_vertex("B", Work(3), Time(12));
                 b.add_edge(a, c, Time(10));  // deadline 12 > sep 10
                 b.add_edge(c, a, Time(15));
                 return check::check_task(std::move(b).build());
               }});
  t.push_back({"drt.overutilized", [] {
                 return check::check_task(self_loop_task(5, 5, 5));
               }});
  t.push_back({"drt.transient", [] {
                 DrtBuilder b("pre");
                 const VertexId a = b.add_vertex("A", Work(1), Time(5));
                 const VertexId c = b.add_vertex("C", Work(1), Time(4));
                 b.add_edge(a, a, Time(5));
                 b.add_edge(c, a, Time(4));
                 return check::check_task(std::move(b).build());
               }});
  t.push_back({"drt.wcet-exceeds-deadline", [] {
                 return check::check_task(self_loop_task(6, 5, 7));
               }});

  t.push_back({"gmf.deadline-exceeds-separation", [] {
                 return check::check_gmf(GmfTask(
                     "g", {GmfFrame{Work(1), Time(5), Time(3)},
                           GmfFrame{Work(1), Time(2), Time(4)}}));
               }});
  t.push_back({"gmf.overutilized", [] {
                 return check::check_gmf(GmfTask(
                     "g", {GmfFrame{Work(2), Time(2), Time(2)},
                           GmfFrame{Work(2), Time(2), Time(2)}}));
               }});
  t.push_back({"gmf.wcet-exceeds-deadline", [] {
                 return check::check_gmf(GmfTask(
                     "g", {GmfFrame{Work(3), Time(2), Time(10)}}));
               }});

  t.push_back({"parse.duplicate-vertex", [] {
                 return parse_task_checked("task t\n"
                                           "vertex A wcet 1 deadline 1\n"
                                           "vertex A wcet 1 deadline 1\n")
                     .diagnostics;
               }});
  t.push_back({"parse.invalid-value", [] {
                 return parse_task_checked(
                            "task t\nvertex A wcet X deadline 1\n")
                     .diagnostics;
               }});
  t.push_back({"parse.missing-field", [] {
                 return parse_task_checked(
                            "task t\nvertex A wcet 1 deadlin 1\n")
                     .diagnostics;
               }});
  t.push_back({"parse.no-task",
               [] { return parse_task_checked("").diagnostics; }});
  t.push_back({"parse.syntax", [] {
                 return parse_task_checked("task t\nbogus\n").diagnostics;
               }});
  t.push_back({"parse.unknown-vertex", [] {
                 return parse_task_checked("task t\n"
                                           "vertex A wcet 1 deadline 1\n"
                                           "edge A Z sep 1\n")
                     .diagnostics;
               }});

  t.push_back({"req.bad-field", [] {
                 return svc::parse_request_json(
                            R"({"kind": "structural", "max_states": "lots",)"
                            R"( "task": "task t\nvertex A wcet 1 deadline 5\n)"
                            R"(edge A A sep 5"})")
                     .diagnostics;
               }});
  t.push_back({"req.missing-task", [] {
                 return svc::parse_request_json(R"({"kind": "structural"})")
                     .diagnostics;
               }});
  t.push_back({"req.unknown-kind", [] {
                 return svc::parse_request_json(
                            R"({"kind": "holistic",)"
                            R"( "task": "task t\nvertex A wcet 1 deadline 5\n)"
                            R"(edge A A sep 5"})")
                     .diagnostics;
               }});

  t.push_back({"recurring.inconsistent-period", [] {
                 RecurringTaskBuilder b("r");
                 const VertexId root = b.set_root("R", Work(1), Time(5));
                 const VertexId x =
                     b.add_child(root, "X", Work(1), Time(5), Time(10));
                 const VertexId y =
                     b.add_child(root, "Y", Work(1), Time(5), Time(10));
                 b.add_restart(x, Time(10));  // period 20
                 b.add_restart(y, Time(15));  // period 25
                 return check::check_recurring(b);
               }});
  t.push_back({"recurring.missing-restart", [] {
                 RecurringTaskBuilder b("r");
                 const VertexId root = b.set_root("R", Work(1), Time(5));
                 b.add_child(root, "X", Work(1), Time(5), Time(10));
                 return check::check_recurring(b);
               }});

  t.push_back({"set.duplicate-task", [] {
                 const std::vector<DrtTask> tasks{test::clean_task(),
                                                  test::clean_task()};
                 return check::check_task_set(tasks);
               }});
  t.push_back({"set.overutilized", [] {
                 const std::vector<DrtTask> tasks{
                     self_loop_task(2, 4, 4), self_loop_task(2, 5, 5),
                     self_loop_task(2, 6, 6)};
                 return check::check_task_set(tasks);
               }});

  t.push_back({"sporadic.overutilized", [] {
                 return check::check_sporadic(
                     SporadicTask{"s", Work(5), Time(4), Time(5)});
               }});
  t.push_back({"sporadic.wcet-exceeds-deadline", [] {
                 return check::check_sporadic(
                     SporadicTask{"s", Work(3), Time(10), Time(2)});
               }});

  t.push_back({"supply.overload", [] {
                 const std::vector<DrtTask> tasks{test::clean_task()};
                 // Long-run rate 1/5 == the set's utilization sum.
                 return check::check_system(
                     tasks, Supply::bounded_delay(Rational(1, 5), Time(2)));
               }});

  return t;
}

TEST(CheckRegistry, EveryCodeHasATriggerThatFiresExactlyIt) {
  const std::vector<Trigger> table = triggers();
  for (const check::CodeInfo& info : check::all_codes()) {
    const auto it =
        std::find_if(table.begin(), table.end(),
                     [&](const Trigger& t) { return t.code == info.code; });
    ASSERT_NE(it, table.end()) << "no trigger for " << info.code;
    const CheckResult r = it->fire();
    EXPECT_TRUE(r.has(info.code)) << info.code << " did not fire";
    for (const check::Diagnostic& d : r.diagnostics()) {
      const bool expected =
          d.code == info.code ||
          std::find(it->also.begin(), it->also.end(), d.code) !=
              it->also.end();
      EXPECT_TRUE(expected) << "trigger for " << info.code
                            << " also fired unexpected " << d.code;
      if (d.code == info.code) {
        EXPECT_EQ(d.severity, info.severity)
            << info.code << " severity mismatch with registry";
      }
    }
  }
}

TEST(CheckRegistry, TriggerTableMatchesRegistry) {
  const auto codes = check::all_codes();
  for (const Trigger& t : triggers()) {
    const bool known = std::any_of(
        codes.begin(), codes.end(),
        [&](const check::CodeInfo& c) { return c.code == t.code; });
    EXPECT_TRUE(known) << "trigger for unregistered code " << t.code;
  }
  // Sorted by code, no duplicates.
  for (std::size_t i = 1; i < codes.size(); ++i) {
    EXPECT_LT(codes[i - 1].code, codes[i].code);
  }
}

TEST(CheckClean, CleanTaskHasZeroDiagnostics) {
  const CheckResult r = check::check_task(test::clean_task());
  EXPECT_TRUE(r.clean()) << [&] {
    std::ostringstream os;
    r.print(os);
    return os.str();
  }();
}

TEST(CheckClean, SmallTaskIsOkButNotFrameSeparated) {
  // The long-standing shared fixture is analyzable (no errors) but not
  // frame-separated -- pin that so the lint keeps agreeing with
  // DrtTask::has_frame_separation.
  const CheckResult r = check::check_task(test::small_task());
  EXPECT_TRUE(r.ok());
  EXPECT_TRUE(r.has("drt.not-frame-separated"));
  EXPECT_EQ(r.diagnostics().size(), r.count("drt.not-frame-separated"));
}

TEST(CheckClean, CleanModelsAcrossFormalisms) {
  EXPECT_TRUE(check::check_gmf(
                  GmfTask("g", {GmfFrame{Work(1), Time(3), Time(4)},
                                GmfFrame{Work(2), Time(5), Time(6)}}))
                  .clean());
  EXPECT_TRUE(check::check_sporadic(
                  SporadicTask{"s", Work(2), Time(10), Time(8)})
                  .clean());
  RecurringTaskBuilder b("r");
  const VertexId root = b.set_root("R", Work(1), Time(4));
  b.add_child(root, "X", Work(1), Time(4), Time(10));
  b.add_child(root, "Y", Work(1), Time(4), Time(12));
  b.with_global_period(Time(30));
  EXPECT_TRUE(check::check_recurring(b).clean());

  const std::vector<DrtTask> set{test::clean_task(),
                                 self_loop_task(1, 5, 10)};
  EXPECT_TRUE(check::check_task_set(set).clean());
  EXPECT_TRUE(
      check::check_system(set, Supply::dedicated(1)).clean());
  const Supply tdma = Supply::tdma(Time(3), Time(8));
  EXPECT_TRUE(
      check::check_supply_curve(tdma.sbf(tdma.min_horizon())).clean());
}

TEST(CheckClean, DemoTaskFileRoundTrip) {
  // Keep examples/data/demo.task in sync with the lint smoke tests.
  const ParseResult res = parse_task_checked(
      "task cruise\n"
      "vertex A wcet 2 deadline 10\n"
      "vertex B wcet 3 deadline 12\n"
      "edge A B sep 10\n"
      "edge B A sep 15\n");
  ASSERT_TRUE(res.task.has_value());
  EXPECT_TRUE(res.diagnostics.clean());
}

TEST(CheckPurity, ValidationNeverChangesAnalysisResults) {
  const DrtTask task = test::clean_task();
  const Time h(60);
  const Staircase direct = rbf(task, h);

  engine::Workspace checked_ws(true);
  const auto diag = checked_ws.validate(task);
  EXPECT_TRUE(diag->clean());
  const auto via_checked = checked_ws.rbf(task, h);

  engine::Workspace unchecked_ws(true);
  const auto via_unchecked = unchecked_ws.rbf(task, h);

  EXPECT_EQ(*via_checked, direct);
  EXPECT_EQ(*via_unchecked, direct);
}

TEST(CheckPurity, WorkspaceValidateIsMemoized) {
  engine::Workspace ws(true);
  const DrtTask task = test::small_task();
  const auto first = ws.validate(task);
  const auto second = ws.validate(task);
  EXPECT_EQ(first.get(), second.get());  // same shared result by fingerprint
  EXPECT_TRUE(first->has("drt.not-frame-separated"));

  engine::Workspace off(false);
  const auto fresh_a = off.validate(task);
  const auto fresh_b = off.validate(task);
  EXPECT_NE(fresh_a.get(), fresh_b.get());
  EXPECT_EQ(fresh_a->diagnostics().size(), fresh_b->diagnostics().size());
}

TEST(CheckResultApi, JsonAndCountsAreConsistent) {
  CheckResult r;
  r.add(Severity::kError, "drt.empty", "task t", "task has no vertices");
  r.add(Severity::kWarning, "drt.dead-end", "vertex B", "no outgoing edge");
  EXPECT_FALSE(r.ok());
  EXPECT_FALSE(r.clean());
  EXPECT_EQ(r.error_count(), 1u);
  EXPECT_EQ(r.warning_count(), 1u);
  EXPECT_EQ(r.count("drt.empty"), 1u);
  const std::string json = r.to_json();
  EXPECT_NE(json.find("\"code\":\"drt.empty\""), std::string::npos);
  EXPECT_NE(json.find("\"severity\":\"warning\""), std::string::npos);
  EXPECT_EQ(json.front(), '[');
  EXPECT_EQ(json.back(), ']');
}

}  // namespace
}  // namespace strt
