#include <gtest/gtest.h>

#include "resource/supply.hpp"
#include "sim/service.hpp"

namespace strt {
namespace {

TEST(Supply, DedicatedBasics) {
  const Supply s = Supply::dedicated(2);
  EXPECT_EQ(s.long_run_rate(), Rational(2));
  const Staircase f = s.sbf(Time(10));
  EXPECT_EQ(f.value(Time(5)), Work(10));
  EXPECT_EQ(s.describe(), "dedicated(rate=2)");
  EXPECT_THROW((void)Supply::dedicated(0), std::invalid_argument);
}

TEST(Supply, BoundedDelayBasics) {
  const Supply s = Supply::bounded_delay(Rational(1, 2), Time(4));
  EXPECT_EQ(s.long_run_rate(), Rational(1, 2));
  const Staircase f = s.sbf(Time(20));
  EXPECT_EQ(f.value(Time(4)), Work(0));
  EXPECT_EQ(f.value(Time(6)), Work(1));
  EXPECT_EQ(f.value(Time(20)), Work(8));
  EXPECT_THROW((void)s.sbf(Time(3)), std::invalid_argument);
}

TEST(Supply, PeriodicAndTdmaRates) {
  EXPECT_EQ(Supply::periodic(Time(3), Time(12)).long_run_rate(),
            Rational(1, 4));
  EXPECT_EQ(Supply::tdma(Time(5), Time(20)).long_run_rate(),
            Rational(1, 4));
  EXPECT_THROW((void)Supply::periodic(Time(5), Time(4)),
               std::invalid_argument);
  EXPECT_THROW((void)Supply::tdma(Time(0), Time(4)), std::invalid_argument);
}

TEST(Supply, SbfStartsAtZeroAndIsMonotone) {
  for (const Supply& s :
       {Supply::dedicated(1), Supply::bounded_delay(Rational(2, 3), Time(5)),
        Supply::periodic(Time(2), Time(7)), Supply::tdma(Time(3), Time(9))}) {
    const Staircase f = s.sbf(max(s.min_horizon(), Time(30)));
    EXPECT_TRUE(f.starts_at_zero()) << s.describe();
    Work prev(0);
    for (std::int64_t t = 0; t <= f.horizon().count(); ++t) {
      EXPECT_GE(f.value(Time(t)), prev) << s.describe() << " t=" << t;
      prev = f.value(Time(t));
    }
    ASSERT_TRUE(f.long_run_rate().has_value());
    EXPECT_EQ(*f.long_run_rate(), s.long_run_rate()) << s.describe();
  }
}

TEST(Supply, SbfIsSuperadditive) {
  // Worst-case supply curves must be superadditive: the guarantee over a
  // split window cannot beat the guarantee over the whole window.  This
  // also justifies pattern_from_sbf as a legal service pattern.
  for (const Supply& s :
       {Supply::dedicated(1), Supply::bounded_delay(Rational(2, 3), Time(5)),
        Supply::periodic(Time(2), Time(7)), Supply::tdma(Time(3), Time(9))}) {
    const Staircase f = s.sbf(Time(60));
    for (std::int64_t a = 0; a <= 30; ++a) {
      for (std::int64_t b = 0; b <= 30; ++b) {
        EXPECT_GE(f.value(Time(a + b)),
                  f.value(Time(a)) + f.value(Time(b)))
            << s.describe() << " a=" << a << " b=" << b;
      }
    }
  }
}

TEST(ServicePattern, TdmaAnyPhaseConformsToSbf) {
  const Supply s = Supply::tdma(Time(3), Time(8));
  const Staircase f = s.sbf(Time(64));
  for (std::int64_t phase = 0; phase < 8; ++phase) {
    const ServicePattern p =
        pattern_tdma(Time(3), Time(8), Time(phase), Time(64));
    EXPECT_TRUE(pattern_conforms(p, f)) << "phase " << phase;
  }
}

TEST(ServicePattern, PeriodicServerPlacementsConformToSbf) {
  const Supply s = Supply::periodic(Time(3), Time(10));
  const Staircase f = s.sbf(Time(60));
  Rng rng(4);
  for (const BudgetPlacement placement :
       {BudgetPlacement::kWorstCase, BudgetPlacement::kEarly,
        BudgetPlacement::kLate, BudgetPlacement::kRandom}) {
    const ServicePattern p = pattern_periodic_server(
        Time(3), Time(10), placement, Time(60), &rng);
    EXPECT_TRUE(pattern_conforms(p, f))
        << "placement " << static_cast<int>(placement);
  }
}

TEST(ServicePattern, WorstCasePlacementIsTightSomewhere) {
  // The worst-case placement must actually realize the sbf bound: there
  // is a window in which it delivers exactly sbf (the 2*(P-Q) blackout).
  const Time budget(3);
  const Time period(10);
  const ServicePattern p = pattern_periodic_server(
      budget, period, BudgetPlacement::kWorstCase, Time(80));
  // Window starting right after the first budget (t=3) of length
  // 2*(P-Q)=14 must contain zero service.
  std::int64_t sum = 0;
  for (std::int64_t t = 3; t < 17; ++t) {
    sum += p[static_cast<std::size_t>(t)];
  }
  EXPECT_EQ(sum, 0);
}

TEST(ServicePattern, FromSbfConformsAndIsMinimal) {
  for (const Supply& s :
       {Supply::tdma(Time(2), Time(5)), Supply::periodic(Time(3), Time(7)),
        Supply::bounded_delay(Rational(1, 2), Time(3))}) {
    const Staircase f = s.sbf(Time(80));
    const ServicePattern p = pattern_from_sbf(f, Time(80));
    EXPECT_TRUE(pattern_conforms(p, f)) << s.describe();
    // Cumulative equals sbf exactly: pointwise minimal conforming run.
    std::int64_t cum = 0;
    for (std::int64_t t = 0; t < 80; ++t) {
      cum += p[static_cast<std::size_t>(t)];
      EXPECT_EQ(cum, f.value(Time(t + 1)).count()) << s.describe();
    }
  }
}

TEST(ServicePattern, ConformanceDetectsViolation) {
  const Supply s = Supply::tdma(Time(3), Time(8));
  const Staircase f = s.sbf(Time(64));
  ServicePattern p = pattern_tdma(Time(3), Time(8), Time(0), Time(64));
  // Steal one slot tick: some window now misses its guarantee.
  for (auto& c : p) {
    if (c > 0) {
      c = 0;
      break;
    }
  }
  EXPECT_FALSE(pattern_conforms(p, f));
}

TEST(Supply, MinHorizonAccepted) {
  for (const Supply& s :
       {Supply::dedicated(3), Supply::bounded_delay(Rational(3, 4), Time(2)),
        Supply::periodic(Time(2), Time(9)), Supply::tdma(Time(4), Time(11))}) {
    EXPECT_NO_THROW((void)s.sbf(s.min_horizon())) << s.describe();
  }
}

}  // namespace
}  // namespace strt
