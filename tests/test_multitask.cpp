#include <gtest/gtest.h>

#include <vector>

#include "core/dimensioning.hpp"
#include "core/edf.hpp"
#include "core/fixed_priority.hpp"
#include "model/generator.hpp"
#include "model/sporadic.hpp"
#include "sim/fifo.hpp"
#include "sim/service.hpp"
#include "sim/trace.hpp"
#include "testutil.hpp"

namespace strt {
namespace {

std::vector<DrtTask> two_sporadics() {
  std::vector<DrtTask> tasks;
  tasks.push_back(SporadicTask{"hi", Work(1), Time(4), Time(4)}.to_drt());
  tasks.push_back(SporadicTask{"lo", Work(2), Time(10), Time(10)}.to_drt());
  return tasks;
}

TEST(FixedPriority, ClassicResponseTimes) {
  // hi: C=1 T=4; lo: C=2 T=10 on a unit processor.
  // hi's delay is its wcet; lo's worst response: 1 (hp) + 2 = 3.
  const auto tasks = two_sporadics();
  const FpResult res =
      fixed_priority_analysis(test::workspace(), tasks, Supply::dedicated(1));
  ASSERT_FALSE(res.overloaded);
  ASSERT_EQ(res.tasks.size(), 2u);
  EXPECT_EQ(res.tasks[0].structural_delay, Time(1));
  EXPECT_EQ(res.tasks[1].structural_delay, Time(3));
  EXPECT_LE(res.tasks[0].structural_delay, res.tasks[0].curve_delay);
  EXPECT_LE(res.tasks[1].structural_delay, res.tasks[1].curve_delay);
}

TEST(FixedPriority, OverloadDetected) {
  std::vector<DrtTask> tasks;
  tasks.push_back(SporadicTask{"a", Work(3), Time(4), Time(4)}.to_drt());
  tasks.push_back(SporadicTask{"b", Work(3), Time(4), Time(4)}.to_drt());
  const FpResult res =
      fixed_priority_analysis(test::workspace(), tasks, Supply::dedicated(1));
  EXPECT_TRUE(res.overloaded);
  EXPECT_TRUE(res.tasks.empty());
}

TEST(FixedPriority, SimulationNeverExceedsPerTaskBounds) {
  Rng rng(515151);
  DrtGenParams params;
  params.min_vertices = 2;
  params.max_vertices = 4;
  params.min_separation = Time(5);
  params.max_separation = Time(25);
  std::vector<GeneratedTask> gen = random_drt_set(rng, 3, 0.5, params);
  std::vector<DrtTask> tasks;
  for (auto& g : gen) tasks.push_back(std::move(g.task));
  const FpResult res = fixed_priority_analysis(test::workspace(), tasks, Supply::dedicated(1));
  ASSERT_FALSE(res.overloaded);

  // Preemptive fixed-priority simulation of dense random runs.
  const Time horizon(600);
  for (int run = 0; run < 10; ++run) {
    std::vector<Trace> traces;
    for (const DrtTask& t : tasks) {
      traces.push_back(trace_random_walk(t, rng, Time(500), 0.4, Time(10)));
    }
    // Cycle-accurate preemptive FP execution on a unit processor.
    struct Job {
      Time release;
      Work remaining;
    };
    std::vector<std::vector<Job>> queues(tasks.size());
    std::vector<std::size_t> next(tasks.size(), 0);
    for (std::int64_t t = 0; t < horizon.count(); ++t) {
      for (std::size_t i = 0; i < tasks.size(); ++i) {
        auto& tr = traces[i];
        while (next[i] < tr.size() && tr[next[i]].release == Time(t)) {
          queues[i].push_back(Job{Time(t), tr[next[i]].wcet});
          ++next[i];
        }
      }
      for (std::size_t i = 0; i < tasks.size(); ++i) {
        if (queues[i].empty()) continue;
        Job& head = queues[i].front();
        head.remaining -= Work(1);
        if (head.remaining == Work(0)) {
          const Time delay = Time(t + 1) - head.release;
          EXPECT_LE(delay, res.tasks[i].structural_delay)
              << "task " << i << " run " << run;
          queues[i].erase(queues[i].begin());
        }
        break;  // highest-priority pending task got the tick
      }
    }
  }
}

TEST(FixedPriority, InterferenceAbstractionOnlyHurts) {
  Rng rng(727272);
  StructuralOptions opts;
  opts.want_witness = false;
  int checked_sets = 0;
  while (checked_sets < 6) {
    DrtGenParams params;
    params.min_vertices = 2;
    params.max_vertices = 4;
    params.min_separation = Time(8);
    params.max_separation = Time(30);
    auto gen = random_drt_set(rng, 3, 0.6, params);
    std::vector<DrtTask> tasks;
    Rational total(0);
    for (auto& g : gen) {
      total += g.exact_utilization;
      tasks.push_back(std::move(g.task));
    }
    if (!(total < Rational(1))) continue;
    const Supply supply = Supply::dedicated(1);
    const FpResult exact = fixed_priority_analysis(test::workspace(), 
        tasks, supply, opts, WorkloadAbstraction::kExactCurve);
    const FpResult hull = fixed_priority_analysis(test::workspace(), 
        tasks, supply, opts, WorkloadAbstraction::kConcaveHull);
    const FpResult bucket = fixed_priority_analysis(test::workspace(), 
        tasks, supply, opts, WorkloadAbstraction::kTokenBucket);
    ASSERT_FALSE(exact.overloaded);
    ASSERT_FALSE(hull.overloaded);
    ASSERT_FALSE(bucket.overloaded);
    ++checked_sets;
    // Priority 0 sees no interference: all three agree.
    EXPECT_EQ(exact.tasks[0].structural_delay,
              hull.tasks[0].structural_delay);
    EXPECT_EQ(exact.tasks[0].structural_delay,
              bucket.tasks[0].structural_delay);
    // Lower priorities: coarser interference can only inflate the bound.
    for (std::size_t i = 1; i < tasks.size(); ++i) {
      EXPECT_LE(exact.tasks[i].structural_delay,
                hull.tasks[i].structural_delay)
          << "set " << checked_sets << " prio " << i;
      EXPECT_LE(hull.tasks[i].structural_delay,
                bucket.tasks[i].structural_delay)
          << "set " << checked_sets << " prio " << i;
    }
  }
}

TEST(FixedPriority, MinGapInterferenceCanOverload) {
  // Two tasks whose min-gap abstraction claims more than the processor.
  std::vector<DrtTask> tasks;
  {
    DrtBuilder b("bursty1");
    const VertexId h = b.add_vertex("H", Work(4), Time(50));
    const VertexId l = b.add_vertex("L", Work(1), Time(20));
    b.add_edge(h, l, Time(5)).add_edge(l, h, Time(60));
    tasks.push_back(std::move(b).build());
  }
  tasks.push_back(SporadicTask{"bg", Work(2), Time(10), Time(10)}.to_drt());
  const Supply supply = Supply::dedicated(1);
  const FpResult exact = fixed_priority_analysis(test::workspace(), 
      tasks, supply, {}, WorkloadAbstraction::kExactCurve);
  EXPECT_FALSE(exact.overloaded);
  const FpResult mingap = fixed_priority_analysis(test::workspace(), 
      tasks, supply, {}, WorkloadAbstraction::kSporadicMinGap);
  EXPECT_TRUE(mingap.overloaded);  // claims 4/5 + 1/5 = 1 >= rate
}

TEST(Edf, UnderloadedSporadicsSchedulable) {
  const auto tasks = two_sporadics();
  const EdfResult res = edf_schedulable(test::workspace(), tasks, Supply::dedicated(1));
  EXPECT_FALSE(res.overloaded);
  EXPECT_TRUE(res.schedulable);
  ASSERT_TRUE(res.margin.has_value());
  EXPECT_GE(*res.margin, 0);
}

TEST(Edf, TightDeadlinesFail) {
  std::vector<DrtTask> tasks;
  tasks.push_back(SporadicTask{"a", Work(3), Time(10), Time(3)}.to_drt());
  tasks.push_back(SporadicTask{"b", Work(3), Time(10), Time(3)}.to_drt());
  const EdfResult res = edf_schedulable(test::workspace(), tasks, Supply::dedicated(1));
  EXPECT_FALSE(res.overloaded);
  EXPECT_FALSE(res.schedulable);
  ASSERT_TRUE(res.first_violation.has_value());
  EXPECT_EQ(*res.first_violation, Time(3));  // demand 6 vs supply 3
  ASSERT_TRUE(res.margin.has_value());
  EXPECT_LT(*res.margin, 0);
}

TEST(Edf, OverloadDetected) {
  std::vector<DrtTask> tasks;
  tasks.push_back(SporadicTask{"a", Work(5), Time(4), Time(4)}.to_drt());
  const EdfResult res = edf_schedulable(test::workspace(), tasks, Supply::dedicated(1));
  EXPECT_TRUE(res.overloaded);
}

TEST(Edf, RequiresFrameSeparation) {
  std::vector<DrtTask> tasks;
  tasks.push_back(test::small_task());  // deadlines exceed separations
  EXPECT_THROW((void)edf_schedulable(test::workspace(), tasks, Supply::dedicated(1)),
               std::invalid_argument);
}

TEST(Edf, EdfOnPartialSupply) {
  std::vector<DrtTask> tasks;
  tasks.push_back(SporadicTask{"a", Work(1), Time(8), Time(8)}.to_drt());
  const EdfResult ok =
      edf_schedulable(test::workspace(), tasks, Supply::tdma(Time(4), Time(8)));
  EXPECT_TRUE(ok.schedulable);
  // Same task but deadline 2 on a slot that can be 4 ticks away: fails.
  std::vector<DrtTask> tight;
  tight.push_back(SporadicTask{"a", Work(1), Time(8), Time(2)}.to_drt());
  const EdfResult bad =
      edf_schedulable(test::workspace(), tight, Supply::tdma(Time(4), Time(8)));
  EXPECT_FALSE(bad.schedulable);
}

TEST(Dimensioning, StructuralNeedsNoMoreThanCurve) {
  Rng rng(9091);
  for (int trial = 0; trial < 8; ++trial) {
    DrtGenParams params;
    params.min_vertices = 2;
    params.max_vertices = 5;
    params.min_separation = Time(6);
    params.max_separation = Time(30);
    params.target_utilization = 0.25;
    const DrtTask task = random_drt(rng, params).task;
    const Time cycle(10);
    const Time deadline(120);
    const auto s =
        min_tdma_slot(test::workspace(), task, cycle, deadline, WorkloadAbstraction::kStructural);
    const auto c = min_tdma_slot(test::workspace(), task, cycle, deadline, WorkloadAbstraction::kConcaveHull);
    if (c.has_value()) {
      ASSERT_TRUE(s.has_value()) << "trial " << trial;
      EXPECT_LE(*s, *c) << "trial " << trial;
    }
    if (s.has_value()) {
      // Minimality: one slot less must violate the deadline (or be zero).
      StructuralOptions opts;
      opts.want_witness = false;
      const StructuralResult at = structural_delay(test::workspace(), 
          task, Supply::tdma(*s, cycle), opts);
      EXPECT_LE(at.delay, deadline);
      if (*s > Time(1)) {
        const StructuralResult below = structural_delay(test::workspace(), 
            task, Supply::tdma(*s - Time(1), cycle), opts);
        EXPECT_GT(below.delay, deadline) << "trial " << trial;
      }
    }
  }
}

TEST(Dimensioning, InfeasibleReturnsNullopt) {
  const SporadicTask sp{"s", Work(50), Time(60), Time(60)};
  EXPECT_FALSE(min_tdma_slot(test::workspace(), sp.to_drt(), Time(10), Time(10),
                             WorkloadAbstraction::kStructural)
                   .has_value());
}

TEST(Dimensioning, PeriodicBudgetSearch) {
  const SporadicTask sp{"s", Work(2), Time(20), Time(20)};
  const auto q = min_periodic_budget(test::workspace(), sp.to_drt(), Time(10), Time(25),
                                     WorkloadAbstraction::kStructural);
  ASSERT_TRUE(q.has_value());
  EXPECT_GE(*q, Time(1));
  EXPECT_LE(*q, Time(10));
}

}  // namespace
}  // namespace strt
