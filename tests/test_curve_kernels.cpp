// Property suite for the SoA curve kernels and the certified coarsening.
//
// The pre-refactor AoS kernels (bench/legacy_curves, the same algorithms
// the curve layer shipped before the SegmentStore overhaul) serve as the
// oracle: on random curves every rewritten kernel must reproduce the old
// results bit for bit -- same breakpoints, same horizons, same throws.
// On top of that the suite pins the coarsening contract (coarse upper >=
// exact >= coarse lower everywhere, certified errors exact) and the
// certified-bound driver's bracket around the exact curve delay.

#include <gtest/gtest.h>

#include <optional>
#include <stdexcept>
#include <vector>

#include "core/certified.hpp"
#include "core/curve_based.hpp"
#include "curves/coarsen.hpp"
#include "curves/minplus.hpp"
#include "curves/staircase.hpp"
#include "engine/workspace.hpp"
#include "legacy_curves.hpp"
#include "resource/supply.hpp"
#include "testutil.hpp"

namespace strt {
namespace {

using test::random_staircase;

/// A tail that is always legal for `f`: one full-horizon period whose
/// increment repeats the whole climb (so the boundary monotonicity check
/// holds for any curve).
Tail full_tail(const Staircase& f) {
  return Tail{f.horizon(), f.value_at_horizon() + Work(1)};
}

/// Step-array equality between the two layouts.
void expect_same_curve(const Staircase& got, const legacy::LegacyCurve& want,
                       const char* what) {
  ASSERT_EQ(got.horizon(), want.horizon) << what;
  ASSERT_EQ(got.breakpoint_count(), want.steps.size()) << what;
  const auto ts = got.times();
  const auto vs = got.values();
  for (std::size_t i = 0; i < want.steps.size(); ++i) {
    EXPECT_EQ(ts[i], want.steps[i].time) << what << " step " << i;
    EXPECT_EQ(vs[i], want.steps[i].value) << what << " step " << i;
  }
}

TEST(CurveKernels, ValueAndInverseBitIdentity) {
  Rng rng(101);
  for (int trial = 0; trial < 30; ++trial) {
    const Time h(rng.uniform_int(1, 80));
    Staircase f = random_staircase(rng, h, 6, 0.4);
    if (rng.chance(0.5)) f = f.with_tail(full_tail(f));
    const legacy::LegacyCurve lf = legacy::from_staircase(f);

    const Time probe_to = f.tail() ? h + h + Time(3) : h;
    for (Time t(0); t <= probe_to; t = t + Time(1)) {
      ASSERT_EQ(f.value(t), lf.value(t)) << "value(" << t.count() << ")";
    }
    const Work top = f.tail() ? f.value_at_horizon() + Work(25)
                              : f.value_at_horizon();
    for (Work w(0); w <= top; w = w + Work(1)) {
      ASSERT_EQ(f.inverse(w), lf.inverse(w)) << "inverse(" << w.count()
                                             << ")";
    }
  }
}

TEST(CurveKernels, InverseBeyondHorizonThrowsLikeLegacy) {
  Rng rng(17);
  const Staircase f = random_staircase(rng, Time(40));
  const legacy::LegacyCurve lf = legacy::from_staircase(f);
  const Work beyond = f.value_at_horizon() + Work(1);
  EXPECT_THROW((void)f.inverse(beyond), std::invalid_argument);
  EXPECT_THROW((void)lf.inverse(beyond), std::invalid_argument);
}

TEST(CurveKernels, ConvBitIdentity) {
  Rng rng(202);
  for (int trial = 0; trial < 25; ++trial) {
    const Staircase f = random_staircase(rng, Time(rng.uniform_int(1, 60)));
    const Staircase g = random_staircase(rng, Time(rng.uniform_int(1, 60)));
    const Staircase got = minplus_conv(f, g);
    const legacy::LegacyCurve want =
        legacy::conv(legacy::from_staircase(f), legacy::from_staircase(g));
    expect_same_curve(got, want, "conv");
  }
}

TEST(CurveKernels, DeconvBitIdentity) {
  Rng rng(303);
  for (int trial = 0; trial < 25; ++trial) {
    const Staircase f = random_staircase(rng, Time(rng.uniform_int(40, 120)),
                                         8, 0.5);
    const Staircase g = random_staircase(rng, Time(rng.uniform_int(1, 40)));
    const Staircase got = minplus_deconv(f, g);
    const legacy::LegacyCurve want =
        legacy::deconv(legacy::from_staircase(f), legacy::from_staircase(g));
    expect_same_curve(got, want, "deconv");
  }
}

TEST(CurveKernels, HdevBitIdentity) {
  Rng rng(404);
  for (int trial = 0; trial < 40; ++trial) {
    const Staircase a = random_staircase(rng, Time(rng.uniform_int(1, 70)));
    Staircase b = random_staircase(rng, Time(rng.uniform_int(1, 70)), 6,
                                   0.4);
    b = b.with_tail(full_tail(b));  // keep every inverse in-domain
    EXPECT_EQ(hdev(a, b),
              legacy::hdev(legacy::from_staircase(a),
                           legacy::from_staircase(b)));
  }
}

TEST(CurveKernels, HdevUnboundedMatchesLegacy) {
  Rng rng(18);
  Staircase a = random_staircase(rng, Time(30), 5, 0.8);
  ASSERT_GT(a.value_at_horizon(), Work(0));
  // Flat supply with a zero-increment tail: the crossing never happens.
  const Staircase b =
      Staircase(Time(10)).with_tail(Tail{Time(1), Work(0)});
  EXPECT_TRUE(hdev(a, b).is_unbounded());
  EXPECT_TRUE(legacy::hdev(legacy::from_staircase(a),
                           legacy::from_staircase(b))
                  .is_unbounded());
}

TEST(CurveKernels, VdevBitIdentity) {
  Rng rng(505);
  for (int trial = 0; trial < 40; ++trial) {
    const Staircase a = random_staircase(rng, Time(rng.uniform_int(1, 70)));
    Staircase b = random_staircase(rng, Time(rng.uniform_int(1, 70)));
    b = b.with_tail(full_tail(b));
    const Time upto(rng.uniform_int(0, 80));
    EXPECT_EQ(vdev(a, b, upto),
              legacy::vdev(legacy::from_staircase(a),
                           legacy::from_staircase(b), upto));
  }
}

TEST(CurveKernels, PointwiseBitIdentity) {
  Rng rng(606);
  for (int trial = 0; trial < 25; ++trial) {
    const Staircase f = random_staircase(rng, Time(rng.uniform_int(1, 80)));
    const Staircase g = random_staircase(rng, Time(rng.uniform_int(1, 80)));
    const legacy::LegacyCurve lf = legacy::from_staircase(f);
    const legacy::LegacyCurve lg = legacy::from_staircase(g);
    expect_same_curve(pointwise_add(f, g), legacy::pointwise_add(lf, lg),
                      "pointwise_add");
    expect_same_curve(pointwise_min(f, g), legacy::pointwise_min(lf, lg),
                      "pointwise_min");
    expect_same_curve(pointwise_max(f, g), legacy::pointwise_max(lf, lg),
                      "pointwise_max");
  }
}

TEST(CurveKernels, FirstCatchUpAndLeftoverBitIdentity) {
  Rng rng(707);
  for (int trial = 0; trial < 40; ++trial) {
    const Staircase a = random_staircase(rng, Time(rng.uniform_int(1, 60)));
    const Staircase b = random_staircase(rng, Time(rng.uniform_int(1, 60)));
    const legacy::LegacyCurve la = legacy::from_staircase(a);
    const legacy::LegacyCurve lb = legacy::from_staircase(b);
    EXPECT_EQ(first_catch_up(a, b), legacy::first_catch_up(la, lb));
    expect_same_curve(leftover_service(b, a),
                      legacy::leftover_service(lb, la), "leftover");
  }
}

TEST(CurveKernels, HdevResumeMatchesFullRecompute) {
  Rng rng(808);
  for (int trial = 0; trial < 15; ++trial) {
    Staircase b = random_staircase(rng, Time(60), 6, 0.4);
    b = b.with_tail(full_tail(b));
    Staircase a = random_staircase(rng, Time(20), 4, 0.5);
    a = a.with_tail(full_tail(a));

    HdevCursor cur;
    Time incremental = hdev_resume(a, b, cur);
    EXPECT_EQ(incremental, hdev(a, b));
    for (Time h(30); h <= Time(90); h = h + Time(15)) {
      a = a.extended(h);
      incremental = hdev_resume(a, b, cur);
      EXPECT_EQ(incremental, hdev(a, b))
          << "resumed hdev at horizon " << h.count();
    }
  }
}

TEST(CurveKernels, CoarsenSoundnessAndExactError) {
  Rng rng(909);
  for (int trial = 0; trial < 30; ++trial) {
    const Time h(rng.uniform_int(1, 90));
    Staircase f = random_staircase(rng, h, 7, 0.5);
    if (rng.chance(0.3)) f = f.with_tail(full_tail(f));
    const std::vector<std::int64_t> grids = {1, 2,  3,
                                             5, 8, 16, h.count() + 7};
    for (const std::int64_t gv : grids) {
      const Time g(gv);
      const CoarseCurve up = coarsen_upper(f, g);
      const CoarseCurve lo = coarsen_lower(f, g);
      ASSERT_EQ(up.curve.horizon(), h);
      ASSERT_EQ(lo.curve.horizon(), h);
      Work worst_up(0);
      Work worst_lo(0);
      for (Time t(0); t <= h; t = t + Time(1)) {
        const Work fv = f.value(t);
        const Work uv = up.curve.value(t);
        const Work lv = lo.curve.value(t);
        ASSERT_GE(uv, fv) << "upper domination at t=" << t.count();
        ASSERT_LE(lv, fv) << "lower domination at t=" << t.count();
        worst_up = max(worst_up, uv - fv);
        worst_lo = max(worst_lo, fv - lv);
      }
      // The certified errors are exact, not just sound: they equal the
      // worst pointwise deviation.
      EXPECT_EQ(up.max_error, worst_up) << "g=" << gv;
      EXPECT_EQ(lo.max_error, worst_lo) << "g=" << gv;
      if (g == Time(1)) {
        EXPECT_EQ(up.curve, f.without_tail());
        EXPECT_EQ(lo.curve, f.without_tail());
        EXPECT_EQ(up.max_error, Work(0));
        EXPECT_EQ(lo.max_error, Work(0));
      }
    }
  }
}

TEST(CurveKernels, WorkspaceCoarseMemoHitsAndBitIdentity) {
  Rng rng(42);
  const Staircase f = random_staircase(rng, Time(64), 5, 0.4);

  engine::Workspace cached(true);
  const auto first = cached.coarse_upper(f, Time(8));
  const auto second = cached.coarse_upper(f, Time(8));
  EXPECT_EQ(first.curve.get(), second.curve.get());
  EXPECT_EQ(first.max_error, second.max_error);
  EXPECT_GE(cached.stats().coarse_hits, 1u);

  engine::Workspace uncached(false);
  const auto fresh = uncached.coarse_upper(f, Time(8));
  EXPECT_EQ(*fresh.curve, *first.curve);
  EXPECT_EQ(fresh.max_error, first.max_error);
  EXPECT_EQ(uncached.stats().coarse_hits, 0u);

  // Different granularity or side is a different memo family.
  const auto lower = cached.coarse_lower(f, Time(8));
  const auto coarser = cached.coarse_upper(f, Time(16));
  EXPECT_NE(lower.curve.get(), first.curve.get());
  EXPECT_NE(coarser.curve.get(), first.curve.get());
}

TEST(CurveKernels, CertifiedBracketContainsExactDelay) {
  const std::vector<DrtTask> tasks = {test::small_task(),
                                      test::clean_task()};
  const std::vector<Supply> supplies = {
      Supply::tdma(Time(3), Time(8)),
      Supply::periodic(Time(4), Time(9)),
      Supply::dedicated(1),
  };
  for (const DrtTask& task : tasks) {
    for (const Supply& supply : supplies) {
      engine::Workspace ws;
      const CurveResult exact = curve_delay(ws, task, supply);
      for (const std::int64_t gv : {2, 4, 8, 16, 64}) {
        CertifiedDelayOptions opts;
        opts.granularity = Time(gv);
        const CertifiedDelayResult c =
            certified_curve_delay(ws, task, supply, opts);
        if (exact.delay.is_unbounded()) {
          // Overload: the driver must agree, exactly, without coarse work.
          EXPECT_TRUE(c.delay.is_unbounded());
          EXPECT_TRUE(c.exact);
          EXPECT_EQ(c.certified_error, Time(0));
          continue;
        }
        ASSERT_FALSE(c.delay.is_unbounded());
        EXPECT_LE(c.delay_lower, exact.delay) << "g=" << gv;
        EXPECT_GE(c.delay, exact.delay) << "g=" << gv;
        EXPECT_EQ(c.certified_error, c.delay - c.delay_lower);
        EXPECT_GE(c.backlog, exact.backlog) << "g=" << gv;
        if (c.exact) {
          EXPECT_EQ(c.delay, exact.delay);
          EXPECT_EQ(c.certified_error, Time(0));
        }
      }
    }
  }
}

TEST(CurveKernels, CertifiedGranularityOneIsExact) {
  engine::Workspace ws;
  const DrtTask task = test::small_task();
  const Supply supply = Supply::dedicated(1);
  const CurveResult exact = curve_delay(ws, task, supply);
  CertifiedDelayOptions opts;
  opts.granularity = Time(1);
  const CertifiedDelayResult c = certified_curve_delay(ws, task, supply, opts);
  EXPECT_TRUE(c.exact);
  EXPECT_EQ(c.delay, exact.delay);
  EXPECT_EQ(c.delay_lower, exact.delay);
  EXPECT_EQ(c.certified_error, Time(0));
  EXPECT_EQ(c.backlog, exact.backlog);
}

TEST(CurveKernels, CertifiedDecisionMatchesExactVerdict) {
  const DrtTask task = test::small_task();
  const Supply supply = Supply::dedicated(1);
  engine::Workspace ws;
  const CurveResult exact = curve_delay(ws, task, supply);
  ASSERT_FALSE(exact.delay.is_unbounded());

  // A threshold at the exact delay must be decided "meets"; one just
  // below it must be decided "misses" -- whatever granularity the driver
  // starts from.
  for (const std::int64_t gv : {2, 8, 64}) {
    CertifiedDelayOptions opts;
    opts.granularity = Time(gv);
    opts.decide = exact.delay;
    const CertifiedDelayResult yes =
        certified_curve_delay(ws, task, supply, opts);
    ASSERT_TRUE(yes.meets_deadline.has_value());
    EXPECT_TRUE(*yes.meets_deadline) << "g=" << gv;
    EXPECT_LE(yes.delay, exact.delay) << "decide bound must certify";

    if (exact.delay > Time(0)) {
      opts.decide = exact.delay - Time(1);
      const CertifiedDelayResult no =
          certified_curve_delay(ws, task, supply, opts);
      ASSERT_TRUE(no.meets_deadline.has_value());
      EXPECT_FALSE(*no.meets_deadline) << "g=" << gv;
      EXPECT_GT(no.delay_lower, *opts.decide);
    }
  }
}

TEST(CurveKernels, CertifiedToleranceStopsEarly) {
  const DrtTask task = test::clean_task();
  const Supply supply = Supply::periodic(Time(4), Time(9));
  engine::Workspace ws;
  const CurveResult exact = curve_delay(ws, task, supply);

  CertifiedDelayOptions opts;
  opts.granularity = Time(64);
  opts.tolerance = Time(2);
  const CertifiedDelayResult c = certified_curve_delay(ws, task, supply, opts);
  if (!c.exact) {
    EXPECT_LE(c.certified_error, Time(2));
  }
  EXPECT_LE(c.delay_lower, exact.delay);
  EXPECT_GE(c.delay, exact.delay);
}

}  // namespace
}  // namespace strt
