// Bit-identity contract of the engine Workspace: for every core analysis
// routed through it, a cache-on run must be bit-identical to a cache-off
// run and to a serial (STRT_THREADS=1) run -- same delays, same stats,
// same orders, same counts -- across a population of random task sets,
// and a second run on the same warm workspace must reproduce the first.

#include <gtest/gtest.h>

#include <vector>

#include "core/audsley.hpp"
#include "core/edf.hpp"
#include "core/fixed_priority.hpp"
#include "core/joint_fp.hpp"
#include "core/sensitivity.hpp"
#include "engine/workspace.hpp"
#include "exec/exec.hpp"
#include "model/generator.hpp"

namespace strt {
namespace {

constexpr int kTaskSets = 50;

void expect_same(const ExploreStats& a, const ExploreStats& b) {
  EXPECT_EQ(a.generated, b.generated);
  EXPECT_EQ(a.expanded, b.expanded);
  EXPECT_EQ(a.pruned, b.pruned);
  EXPECT_EQ(a.aborted, b.aborted);
}

void expect_same(const FpResult& a, const FpResult& b) {
  EXPECT_EQ(a.overloaded, b.overloaded);
  EXPECT_EQ(a.system_busy_window, b.system_busy_window);
  ASSERT_EQ(a.tasks.size(), b.tasks.size());
  for (std::size_t i = 0; i < a.tasks.size(); ++i) {
    EXPECT_EQ(a.tasks[i].task_index, b.tasks[i].task_index);
    EXPECT_EQ(a.tasks[i].busy_window, b.tasks[i].busy_window);
    EXPECT_EQ(a.tasks[i].structural_delay, b.tasks[i].structural_delay);
    EXPECT_EQ(a.tasks[i].curve_delay, b.tasks[i].curve_delay);
    EXPECT_EQ(a.tasks[i].structural_backlog, b.tasks[i].structural_backlog);
    EXPECT_EQ(a.tasks[i].curve_backlog, b.tasks[i].curve_backlog);
    EXPECT_EQ(a.tasks[i].vertex_delays, b.tasks[i].vertex_delays);
    EXPECT_EQ(a.tasks[i].meets_vertex_deadlines,
              b.tasks[i].meets_vertex_deadlines);
    expect_same(a.tasks[i].stats, b.tasks[i].stats);
  }
}

void expect_same(const EdfResult& a, const EdfResult& b) {
  EXPECT_EQ(a.schedulable, b.schedulable);
  EXPECT_EQ(a.overloaded, b.overloaded);
  EXPECT_EQ(a.first_violation, b.first_violation);
  EXPECT_EQ(a.margin, b.margin);
  EXPECT_EQ(a.horizon_checked, b.horizon_checked);
}

void expect_same(const JointFpResult& a, const JointFpResult& b) {
  EXPECT_EQ(a.overloaded, b.overloaded);
  EXPECT_EQ(a.joint_delay, b.joint_delay);
  EXPECT_EQ(a.rbf_delay, b.rbf_delay);
  EXPECT_EQ(a.paths_enumerated, b.paths_enumerated);
  EXPECT_EQ(a.paths_analyzed, b.paths_analyzed);
  EXPECT_EQ(a.busy_window, b.busy_window);
  expect_same(a.explore_stats, b.explore_stats);
}

void expect_same(const SensitivityReport& a, const SensitivityReport& b) {
  EXPECT_EQ(a.feasible, b.feasible);
  EXPECT_EQ(a.wcet_slack, b.wcet_slack);
  EXPECT_EQ(a.separation_slack, b.separation_slack);
}

void expect_same(const AudsleyResult& a, const AudsleyResult& b) {
  EXPECT_EQ(a.feasible, b.feasible);
  EXPECT_EQ(a.order, b.order);
  EXPECT_EQ(a.tests_run, b.tests_run);
}

/// Runs `analysis` (a callable taking a Workspace&) four ways -- cache
/// off, cache on, cache on warm (second run on the same workspace), and
/// cache on under 4 exec threads -- and requires all results identical.
template <class Fn>
void cache_equivalence(Fn&& analysis) {
  exec::set_thread_count(1);
  engine::Workspace off(false);
  const auto reference = analysis(off);

  engine::Workspace on(true);
  const auto cached = analysis(on);
  const auto warm = analysis(on);  // every curve already interned

  exec::set_thread_count(4);
  engine::Workspace shared(true);
  const auto parallel = analysis(shared);
  exec::set_thread_count(0);

  expect_same(reference, cached);
  expect_same(reference, warm);
  expect_same(reference, parallel);
}

std::vector<DrtTask> random_set(std::uint64_t seed, std::size_t set_size,
                                double total_util) {
  Rng rng = Rng::split(seed, 0);
  DrtGenParams params;
  params.min_vertices = 2;
  params.max_vertices = 4;
  params.min_separation = Time(6);
  params.max_separation = Time(24);
  auto gen = random_drt_set(rng, set_size, total_util, params);
  std::vector<DrtTask> tasks;
  for (auto& g : gen) tasks.push_back(std::move(g.task));
  return tasks;
}

TEST(EngineEquivalence, FixedPriorityBitIdentical) {
  const Supply supply = Supply::dedicated(1);
  StructuralOptions opts;
  opts.want_witness = false;
  for (int t = 0; t < kTaskSets; ++t) {
    const auto tasks =
        random_set(1000 + static_cast<std::uint64_t>(t), 3, 0.6);
    cache_equivalence([&](engine::Workspace& ws) {
      return fixed_priority_analysis(ws, tasks, supply, opts);
    });
  }
}

TEST(EngineEquivalence, EdfBitIdentical) {
  const Supply supply = Supply::tdma(Time(7), Time(10));
  for (int t = 0; t < kTaskSets; ++t) {
    const auto tasks =
        random_set(5000 + static_cast<std::uint64_t>(t), 3, 0.6);
    cache_equivalence([&](engine::Workspace& ws) {
      return edf_schedulable(ws, tasks, supply);
    });
  }
}

TEST(EngineEquivalence, JointFpBitIdentical) {
  const Supply supply = Supply::dedicated(1);
  for (int t = 0; t < kTaskSets; ++t) {
    const auto tasks =
        random_set(2000 + static_cast<std::uint64_t>(t), 3, 0.5);
    cache_equivalence([&](engine::Workspace& ws) {
      return joint_multi_task_fp(ws, {tasks.data(), 2}, tasks[2], supply,
                                 {});
    });
  }
}

TEST(EngineEquivalence, SensitivityBitIdentical) {
  const Supply supply = Supply::tdma(Time(5), Time(10));
  for (int t = 0; t < kTaskSets; ++t) {
    const auto tasks =
        random_set(3000 + static_cast<std::uint64_t>(t), 1, 0.3);
    cache_equivalence([&](engine::Workspace& ws) {
      return sensitivity_analysis(ws, tasks[0], supply, {});
    });
  }
}

TEST(EngineEquivalence, AudsleyBitIdentical) {
  const Supply supply = Supply::dedicated(1);
  StructuralOptions opts;
  opts.want_witness = false;
  for (int t = 0; t < 10; ++t) {
    const auto tasks =
        random_set(4000 + static_cast<std::uint64_t>(t), 4, 0.7);
    cache_equivalence([&](engine::Workspace& ws) {
      return audsley_assignment(ws, tasks, supply, opts);
    });
  }
}

}  // namespace
}  // namespace strt
