#include <gtest/gtest.h>

#include <sstream>

#include "io/csv.hpp"
#include "io/curve_csv.hpp"
#include "io/dot.hpp"
#include "io/parse.hpp"
#include "io/table.hpp"
#include "testutil.hpp"

namespace strt {
namespace {

TEST(Table, AlignsColumns) {
  Table t({"name", "value"});
  t.add_row({"a", "1"});
  t.add_row({"long-name", "22"});
  std::ostringstream os;
  t.print(os);
  const std::string s = os.str();
  EXPECT_NE(s.find("| long-name |"), std::string::npos);
  EXPECT_NE(s.find("|------"), std::string::npos);
  EXPECT_EQ(t.row_count(), 2u);
}

TEST(Table, RejectsMismatchedRow) {
  Table t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), std::invalid_argument);
  EXPECT_THROW(Table({}), std::invalid_argument);
}

TEST(FmtRatio, FixedDecimals) {
  EXPECT_EQ(fmt_ratio(1.0 / 3.0), "0.33");
  EXPECT_EQ(fmt_ratio(2.5, 1), "2.5");
}

TEST(Csv, EscapesSpecialCharacters) {
  EXPECT_EQ(csv_escape("plain"), "plain");
  EXPECT_EQ(csv_escape("a,b"), "\"a,b\"");
  EXPECT_EQ(csv_escape("say \"hi\""), "\"say \"\"hi\"\"\"");
}

TEST(Csv, WritesHeaderAndRows) {
  std::ostringstream os;
  CsvWriter w(os, {"x", "y"});
  w.row({"1", "2"}).row({"3", "4,5"});
  EXPECT_EQ(os.str(), "x,y\n1,2\n3,\"4,5\"\n");
  EXPECT_THROW(w.row({"too", "many", "cells"}), std::invalid_argument);
}

TEST(Dot, ContainsVerticesAndEdges) {
  const std::string dot = to_dot(test::small_task());
  EXPECT_NE(dot.find("digraph \"small\""), std::string::npos);
  EXPECT_NE(dot.find("e=4 d=10"), std::string::npos);
  EXPECT_NE(dot.find("n0 -> n1 [label=\"3\"]"), std::string::npos);
}

TEST(Parse, TaskRoundTrip) {
  const DrtTask original = test::small_task();
  const std::string text = serialize_task(original);
  const DrtTask parsed = parse_task(text);
  EXPECT_EQ(parsed.name(), original.name());
  ASSERT_EQ(parsed.vertex_count(), original.vertex_count());
  ASSERT_EQ(parsed.edge_count(), original.edge_count());
  for (VertexId v = 0;
       static_cast<std::size_t>(v) < original.vertex_count(); ++v) {
    EXPECT_EQ(parsed.vertex(v).name, original.vertex(v).name);
    EXPECT_EQ(parsed.vertex(v).wcet, original.vertex(v).wcet);
    EXPECT_EQ(parsed.vertex(v).deadline, original.vertex(v).deadline);
  }
  for (std::size_t i = 0; i < original.edge_count(); ++i) {
    EXPECT_EQ(parsed.edges()[i].from, original.edges()[i].from);
    EXPECT_EQ(parsed.edges()[i].to, original.edges()[i].to);
    EXPECT_EQ(parsed.edges()[i].separation, original.edges()[i].separation);
  }
}

TEST(Parse, AcceptsCommentsAndBlankLines) {
  const DrtTask t = parse_task(
      "# header comment\n"
      "task demo\n"
      "\n"
      "vertex A wcet 2 deadline 7   # trailing comment\n"
      "vertex B wcet 1 deadline 3\n"
      "edge A B sep 4\n"
      "edge B A sep 9\n");
  EXPECT_EQ(t.name(), "demo");
  EXPECT_EQ(t.vertex_count(), 2u);
  EXPECT_EQ(t.vertex(0).deadline, Time(7));
}

TEST(Parse, ReportsLineNumbers) {
  try {
    (void)parse_task("task t\nvertex A wcet X deadline 1\n");
    FAIL() << "expected parse error";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("line 2"), std::string::npos);
  }
}

TEST(Parse, RejectsMalformedInput) {
  EXPECT_THROW((void)parse_task(""), std::invalid_argument);
  EXPECT_THROW((void)parse_task("vertex A wcet 1 deadline 1\n"),
               std::invalid_argument);
  EXPECT_THROW((void)parse_task("task t\ntask t2\n"), std::invalid_argument);
  EXPECT_THROW((void)parse_task("task t\nvertex A wcet 1 deadline 1\n"
                                "edge A Z sep 1\n"),
               std::invalid_argument);
  EXPECT_THROW((void)parse_task("task t\nbogus\n"), std::invalid_argument);
  EXPECT_THROW(
      (void)parse_task("task t\nvertex A wcet 1 deadline 1\n"
                       "vertex A wcet 1 deadline 1\n"),
      std::invalid_argument);
}

TEST(Parse, SupplyRoundTrip) {
  for (const char* text :
       {"dedicated rate 2", "bounded_delay rate 3/4 delay 10",
        "periodic budget 5 period 20", "tdma slot 5 cycle 20"}) {
    const Supply s = parse_supply(text);
    EXPECT_EQ(serialize_supply(s), text);
  }
}

TEST(CurveCsv, SamplesAllBreakpoints) {
  const Staircase f = Staircase::from_points(
      {Step{Time(3), Work(2)}, Step{Time(7), Work(5)}}, Time(10));
  const Staircase g = Staircase::from_points(
      {Step{Time(5), Work(1)}}, Time(10));
  std::ostringstream os;
  write_curves_csv(os, {CurveSeries{"f", &f}, CurveSeries{"g", &g}},
                   Time(10));
  const std::string out = os.str();
  EXPECT_NE(out.find("time,f,g\n"), std::string::npos);
  // Jump rows and the just-before rows are present with correct values.
  EXPECT_NE(out.find("\n2,0,0\n"), std::string::npos);
  EXPECT_NE(out.find("\n3,2,0\n"), std::string::npos);
  EXPECT_NE(out.find("\n5,2,1\n"), std::string::npos);
  EXPECT_NE(out.find("\n7,5,1\n"), std::string::npos);
  EXPECT_NE(out.find("\n10,5,1\n"), std::string::npos);
}

TEST(CurveCsv, RejectsBadInput) {
  std::ostringstream os;
  EXPECT_THROW(write_curves_csv(os, {}, Time(5)), std::invalid_argument);
  EXPECT_THROW(write_curves_csv(os, {CurveSeries{"x", nullptr}}, Time(5)),
               std::invalid_argument);
}

TEST(Parse, SupplyRejectsUnknownKind) {
  EXPECT_THROW((void)parse_supply("magic beans 3"), std::invalid_argument);
  EXPECT_THROW((void)parse_supply(""), std::invalid_argument);
  EXPECT_THROW((void)parse_supply("tdma slot 5"), std::invalid_argument);
}

}  // namespace
}  // namespace strt
