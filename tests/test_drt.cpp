#include <gtest/gtest.h>

#include <sstream>

#include "graph/drt.hpp"
#include "testutil.hpp"

namespace strt {
namespace {

TEST(DrtBuilder, BuildsValidTask) {
  DrtBuilder b("t");
  const VertexId a = b.add_vertex("A", Work(2), Time(5));
  const VertexId c = b.add_vertex("B", Work(3), Time(7));
  b.add_edge(a, c, Time(4)).add_edge(c, a, Time(6));
  const DrtTask task = std::move(b).build();
  EXPECT_EQ(task.vertex_count(), 2u);
  EXPECT_EQ(task.edge_count(), 2u);
  EXPECT_EQ(task.name(), "t");
  EXPECT_EQ(task.vertex(a).wcet, Work(2));
  EXPECT_EQ(task.vertex(c).deadline, Time(7));
  EXPECT_EQ(task.max_wcet(), Work(3));
}

TEST(DrtBuilder, RejectsBadParameters) {
  DrtBuilder b("t");
  EXPECT_THROW((void)b.add_vertex("A", Work(0), Time(5)),
               std::invalid_argument);
  EXPECT_THROW((void)b.add_vertex("A", Work(1), Time(0)),
               std::invalid_argument);
  const VertexId a = b.add_vertex("A", Work(1), Time(1));
  EXPECT_THROW(b.add_edge(a, a, Time(0)), std::invalid_argument);
  EXPECT_THROW(b.add_edge(a, 5, Time(1)), std::invalid_argument);
  EXPECT_THROW(b.add_edge(-1, a, Time(1)), std::invalid_argument);
}

TEST(DrtBuilder, RejectsEmptyTask) {
  DrtBuilder b("t");
  EXPECT_THROW((void)std::move(b).build(), std::invalid_argument);
}

TEST(DrtTask, CsrAdjacency) {
  const DrtTask task = test::small_task();
  // Vertex A (id 0) has two out-edges (to B and D).
  EXPECT_EQ(task.out_edges(0).size(), 2u);
  EXPECT_EQ(task.out_edges(1).size(), 1u);
  std::set<VertexId> targets;
  for (std::int32_t ei : task.out_edges(0)) {
    targets.insert(task.edges()[static_cast<std::size_t>(ei)].to);
  }
  EXPECT_EQ(targets, (std::set<VertexId>{1, 3}));
  EXPECT_THROW((void)task.out_edges(9), std::invalid_argument);
  EXPECT_THROW((void)task.vertex(-1), std::invalid_argument);
}

TEST(DrtTask, FrameSeparationDetection) {
  EXPECT_TRUE(test::small_task().has_frame_separation() == false);
  // small_task: A has deadline 10 but outgoing separations 3 and 4.
  DrtBuilder b("fs");
  const VertexId a = b.add_vertex("A", Work(1), Time(3));
  const VertexId c = b.add_vertex("B", Work(1), Time(5));
  b.add_edge(a, c, Time(3)).add_edge(c, a, Time(5));
  EXPECT_TRUE(std::move(b).build().has_frame_separation());
}

TEST(DrtTask, CyclicDetection) {
  EXPECT_TRUE(test::small_task().is_cyclic());
  DrtBuilder b("dag");
  const VertexId a = b.add_vertex("A", Work(1), Time(1));
  const VertexId c = b.add_vertex("B", Work(1), Time(1));
  b.add_edge(a, c, Time(1));
  EXPECT_FALSE(std::move(b).build().is_cyclic());

  DrtBuilder s("selfloop");
  const VertexId v = s.add_vertex("V", Work(1), Time(1));
  s.add_edge(v, v, Time(3));
  EXPECT_TRUE(std::move(s).build().is_cyclic());
}

TEST(DrtTask, StreamOutput) {
  std::ostringstream os;
  os << test::small_task();
  const std::string str = os.str();
  EXPECT_NE(str.find("A(e=4,d=10)"), std::string::npos);
  EXPECT_NE(str.find("A->B[3]"), std::string::npos);
}

TEST(DrtTask, ParallelEdgesAllowed) {
  DrtBuilder b("par");
  const VertexId a = b.add_vertex("A", Work(1), Time(1));
  const VertexId c = b.add_vertex("B", Work(1), Time(1));
  b.add_edge(a, c, Time(2)).add_edge(a, c, Time(9)).add_edge(c, a, Time(1));
  const DrtTask task = std::move(b).build();
  EXPECT_EQ(task.out_edges(a).size(), 2u);
}

}  // namespace
}  // namespace strt
