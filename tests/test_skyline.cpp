// The explorer's flat containers against their predecessors as oracles:
// FlatSkyline vs the std::map skyline shipped before the hot-path
// overhaul, BucketQueue vs a std::priority_queue with the explorer's
// (elapsed asc, work desc) comparator.

#include <gtest/gtest.h>

#include <map>
#include <queue>
#include <utility>
#include <vector>

#include "base/rng.hpp"
#include "graph/skyline.hpp"

namespace strt {
namespace {

/// The pre-overhaul map-backed skyline, kept verbatim as the oracle.
class MapSkyline {
 public:
  bool insert(Time t, Work w, std::int32_t idx) {
    auto it = entries_.upper_bound(t);
    if (it != entries_.begin()) {
      const auto& prev = *std::prev(it);
      if (prev.second.first >= w) return false;  // dominated
    }
    while (it != entries_.end() && it->second.first <= w) {
      it = entries_.erase(it);
    }
    entries_.insert_or_assign(t, std::make_pair(w, idx));
    return true;
  }

  [[nodiscard]] bool is_live(Time t, std::int32_t idx) const {
    auto it = entries_.find(t);
    return it != entries_.end() && it->second.second == idx;
  }

  [[nodiscard]] std::vector<std::tuple<std::int64_t, std::int64_t,
                                       std::int32_t>>
  dump() const {
    std::vector<std::tuple<std::int64_t, std::int64_t, std::int32_t>> out;
    for (const auto& [t, wi] : entries_) {
      out.emplace_back(t.count(), wi.first.count(), wi.second);
    }
    return out;
  }

 private:
  std::map<Time, std::pair<Work, std::int32_t>> entries_;
};

std::vector<std::tuple<std::int64_t, std::int64_t, std::int32_t>> dump(
    const FlatSkyline& s) {
  std::vector<std::tuple<std::int64_t, std::int64_t, std::int32_t>> out;
  s.for_each([&](Time t, Work w, std::int32_t idx) {
    out.emplace_back(t.count(), w.count(), idx);
  });
  return out;
}

TEST(FlatSkyline, HandInsertEdgeCases) {
  FlatSkyline s;
  EXPECT_TRUE(s.insert(Time(10), Work(5), 0));
  // Dominated: same time, less-or-equal work.
  EXPECT_FALSE(s.insert(Time(10), Work(5), 1));
  EXPECT_FALSE(s.insert(Time(10), Work(4), 2));
  // Dominated: later with no extra work.
  EXPECT_FALSE(s.insert(Time(15), Work(5), 3));
  // Improvement at the same time replaces the entry.
  EXPECT_TRUE(s.insert(Time(10), Work(7), 4));
  EXPECT_FALSE(s.is_live(Time(10), 0));
  EXPECT_TRUE(s.is_live(Time(10), 4));
  // Earlier with at least as much work evicts the later entry.
  EXPECT_TRUE(s.insert(Time(4), Work(7), 5));
  EXPECT_FALSE(s.is_live(Time(10), 4));
  EXPECT_EQ(s.size(), 1u);
  // Strictly more work later on coexists.
  EXPECT_TRUE(s.insert(Time(12), Work(9), 6));
  EXPECT_EQ(s.size(), 2u);
  const auto entries = dump(s);
  ASSERT_EQ(entries.size(), 2u);
  EXPECT_EQ(entries[0], std::make_tuple(std::int64_t{4}, std::int64_t{7}, 5));
  EXPECT_EQ(entries[1], std::make_tuple(std::int64_t{12}, std::int64_t{9}, 6));
}

TEST(FlatSkyline, EvictsARangeOfDominatedEntries) {
  FlatSkyline s;
  for (int i = 0; i < 10; ++i) {
    EXPECT_TRUE(s.insert(Time(10 + i), Work(1 + i), i));
  }
  // (12, 8) dominates entries at times 12..17 (work 3..8): one bulk
  // eviction of a contiguous range.
  EXPECT_TRUE(s.insert(Time(12), Work(8), 99));
  const auto entries = dump(s);
  ASSERT_EQ(entries.size(), 5u);  // times 10, 11, then 12(new), 18, 19
  EXPECT_EQ(std::get<0>(entries[2]), 12);
  EXPECT_EQ(std::get<2>(entries[2]), 99);
  EXPECT_EQ(std::get<0>(entries[3]), 18);
}

TEST(FlatSkyline, MatchesMapOracleOnRandomStreams) {
  Rng rng(2024);
  for (int trial = 0; trial < 200; ++trial) {
    FlatSkyline flat;
    MapSkyline oracle;
    const int ops = static_cast<int>(rng.uniform_int(1, 120));
    for (std::int32_t op = 0; op < ops; ++op) {
      const Time t(rng.uniform_int(0, 25));
      const Work w(rng.uniform_int(0, 25));
      EXPECT_EQ(flat.insert(t, w, op), oracle.insert(t, w, op))
          << "trial " << trial << " op " << op;
      EXPECT_EQ(dump(flat), oracle.dump()) << "trial " << trial;
      // Liveness agrees on a random probe as well.
      const Time pt(rng.uniform_int(0, 25));
      EXPECT_EQ(flat.is_live(pt, op), oracle.is_live(pt, op));
    }
  }
}

TEST(FlatSkyline, InvariantBothKeysStrictlyIncrease) {
  Rng rng(7);
  FlatSkyline s;
  for (std::int32_t op = 0; op < 500; ++op) {
    s.insert(Time(rng.uniform_int(0, 60)), Work(rng.uniform_int(0, 60)), op);
    std::int64_t last_t = -1;
    std::int64_t last_w = -1;
    s.for_each([&](Time t, Work w, std::int32_t) {
      EXPECT_GT(t.count(), last_t);
      EXPECT_GT(w.count(), last_w);
      last_t = t.count();
      last_w = w.count();
    });
  }
}

TEST(BucketQueue, MatchesPriorityQueueOrder) {
  // Replays a monotone push schedule (pushes never at or below the pop
  // cursor, as in the explorer) against the old comparator's heap.
  struct QItem {
    Time elapsed;
    Work work;
    std::int32_t idx;
  };
  auto cmp = [](const QItem& a, const QItem& b) {
    if (a.elapsed != b.elapsed) return a.elapsed > b.elapsed;
    if (a.work != b.work) return a.work < b.work;
    return a.idx > b.idx;  // tie-break matching BucketQueue (idx asc)
  };
  Rng rng(99);
  for (int trial = 0; trial < 50; ++trial) {
    BucketQueue q(Time(200));
    std::priority_queue<QItem, std::vector<QItem>, decltype(cmp)> heap(cmp);
    std::int32_t next_idx = 0;
    // Seed a burst at elapsed 0, then alternate pops with child pushes
    // strictly above the popped elapsed.
    for (int i = 0; i < 5; ++i) {
      const Work w(rng.uniform_int(0, 9));
      q.push(Time(0), w, next_idx);
      heap.push(QItem{Time(0), w, next_idx});
      ++next_idx;
    }
    while (q.size() != 0) {
      ASSERT_FALSE(heap.empty());
      Time elapsed(0);
      BucketQueue::Item item{};
      ASSERT_TRUE(q.pop(elapsed, item));
      const QItem expect = heap.top();
      heap.pop();
      EXPECT_EQ(elapsed, expect.elapsed) << "trial " << trial;
      EXPECT_EQ(item.work, expect.work) << "trial " << trial;
      EXPECT_EQ(item.idx, expect.idx) << "trial " << trial;
      // Children land strictly later, while the span budget lasts.
      const std::int64_t kids = rng.uniform_int(0, 2);
      for (std::int64_t k = 0; k < kids; ++k) {
        const Time child = elapsed + Time(rng.uniform_int(1, 30));
        if (child > Time(200)) continue;
        const Work w(rng.uniform_int(0, 9));
        q.push(child, w, next_idx);
        heap.push(QItem{child, w, next_idx});
        ++next_idx;
      }
    }
    EXPECT_TRUE(heap.empty());
  }
}

TEST(BucketQueue, SparseFallbackBeyondDenseLimit) {
  // A limit past kDenseLimit must not allocate a bucket per tick.
  const Time limit(BucketQueue::kDenseLimit + 1000);
  BucketQueue q(limit);
  q.push(Time(0), Work(1), 0);
  q.push(Time(BucketQueue::kDenseLimit + 500), Work(2), 1);
  q.push(Time(3), Work(3), 2);
  Time elapsed(0);
  BucketQueue::Item item{};
  ASSERT_TRUE(q.pop(elapsed, item));
  EXPECT_EQ(elapsed, Time(0));
  EXPECT_EQ(item.idx, 0);
  ASSERT_TRUE(q.pop(elapsed, item));
  EXPECT_EQ(elapsed, Time(3));
  EXPECT_EQ(item.idx, 2);
  ASSERT_TRUE(q.pop(elapsed, item));
  EXPECT_EQ(elapsed, Time(BucketQueue::kDenseLimit + 500));
  EXPECT_EQ(item.idx, 1);
  EXPECT_FALSE(q.pop(elapsed, item));
}

TEST(BucketQueue, EmptyPopsReturnFalse) {
  BucketQueue q(Time(10));
  Time elapsed(0);
  BucketQueue::Item item{};
  EXPECT_FALSE(q.pop(elapsed, item));
  q.push(Time(2), Work(1), 7);
  ASSERT_TRUE(q.pop(elapsed, item));
  EXPECT_EQ(item.idx, 7);
  EXPECT_FALSE(q.pop(elapsed, item));
}

}  // namespace
}  // namespace strt
