#include <gtest/gtest.h>

#include "core/structural.hpp"
#include "curves/builders.hpp"
#include "graph/cycle_ratio.hpp"
#include "graph/scc.hpp"
#include "io/parse.hpp"
#include "model/generator.hpp"
#include "model/sporadic.hpp"
#include "sim/service.hpp"
#include "testutil.hpp"

namespace strt {
namespace {

TEST(Scc, SingleComponentForStronglyConnectedTask) {
  const DrtTask task = test::small_task();
  const SccResult scc = strongly_connected_components(task);
  EXPECT_EQ(scc.component_count, 1);
  EXPECT_TRUE(is_strongly_connected(task));
  ASSERT_EQ(scc.members.size(), 1u);
  EXPECT_EQ(scc.members[0].size(), task.vertex_count());
}

TEST(Scc, TwoLoopsJoinedByABridge) {
  // Loop {A,B} -> bridge -> loop {C,D}: three SCCs (bridge is trivial).
  DrtBuilder b("two-loops");
  const VertexId a = b.add_vertex("A", Work(1), Time(1));
  const VertexId v = b.add_vertex("B", Work(2), Time(1));
  const VertexId bridge = b.add_vertex("X", Work(1), Time(1));
  const VertexId c = b.add_vertex("C", Work(3), Time(1));
  const VertexId d = b.add_vertex("D", Work(1), Time(1));
  b.add_edge(a, v, Time(2)).add_edge(v, a, Time(2));
  b.add_edge(v, bridge, Time(5));
  b.add_edge(bridge, c, Time(5));
  b.add_edge(c, d, Time(4)).add_edge(d, c, Time(4));
  const DrtTask task = std::move(b).build();

  const SccResult scc = strongly_connected_components(task);
  EXPECT_EQ(scc.component_count, 3);
  EXPECT_FALSE(is_strongly_connected(task));
  EXPECT_EQ(scc.component[static_cast<std::size_t>(a)],
            scc.component[static_cast<std::size_t>(v)]);
  EXPECT_EQ(scc.component[static_cast<std::size_t>(c)],
            scc.component[static_cast<std::size_t>(d)]);
  EXPECT_NE(scc.component[static_cast<std::size_t>(a)],
            scc.component[static_cast<std::size_t>(bridge)]);

  // Edge direction property: every edge goes to an equal-or-lower id.
  for (const DrtEdge& e : task.edges()) {
    EXPECT_LE(scc.component[static_cast<std::size_t>(e.to)],
              scc.component[static_cast<std::size_t>(e.from)]);
  }

  // Per-SCC utilizations: {A,B} = 3/4, {C,D} = 4/8, bridge trivial.
  const auto utils = scc_utilizations(task);
  ASSERT_EQ(utils.size(), 3u);
  std::multiset<std::string> seen;
  for (const auto& u : utils) {
    seen.insert(u ? u->to_string() : "none");
  }
  EXPECT_EQ(seen, (std::multiset<std::string>{"none", "3/4", "1/2"}));

  // Task utilization is the max over components.
  const auto task_u = utilization(task);
  ASSERT_TRUE(task_u.has_value());
  EXPECT_EQ(*task_u, Rational(3, 4));
}

TEST(Scc, SelfLoopIsNontrivial) {
  DrtBuilder b("self");
  const VertexId a = b.add_vertex("A", Work(2), Time(1));
  b.add_edge(a, a, Time(6));
  const DrtTask task = std::move(b).build();
  const auto utils = scc_utilizations(task);
  ASSERT_EQ(utils.size(), 1u);
  ASSERT_TRUE(utils[0].has_value());
  EXPECT_EQ(*utils[0], Rational(1, 3));
}

TEST(Scc, MatchesUtilizationOnRandomTasks) {
  Rng rng(2025);
  for (int trial = 0; trial < 15; ++trial) {
    DrtGenParams params;
    params.target_utilization = 0.4;
    const DrtTask task = random_drt(rng, params).task;
    const auto task_u = utilization(task);
    ASSERT_TRUE(task_u.has_value());
    Rational best(0);
    for (const auto& u : scc_utilizations(task)) {
      if (u && best < *u) best = *u;
    }
    EXPECT_EQ(best, *task_u) << "trial " << trial;
  }
}

TEST(ScheduleSupply, SingleSlotMatchesTdma) {
  // Mask with one contiguous slot == tdma_supply.
  std::vector<bool> mask(9, false);
  mask[0] = mask[1] = mask[2] = true;
  const Staircase sched = curve::schedule_supply(mask, Time(45));
  const Staircase tdma = curve::tdma_supply(Time(3), Time(9), Time(45));
  for (std::int64_t t = 0; t <= 90; ++t) {
    EXPECT_EQ(sched.value(Time(t)), tdma.value(Time(t))) << t;
  }
}

TEST(ScheduleSupply, SplitSlotsBeatOneBigSlotInLatency) {
  // Same bandwidth (4/12), but two slots of 2 have a shorter worst-case
  // initial blackout than one slot of 4.
  std::vector<bool> split(12, false);
  split[0] = split[1] = true;
  split[6] = split[7] = true;
  const Staircase two = curve::schedule_supply(split, Time(48));
  const Staircase one = curve::tdma_supply(Time(4), Time(12), Time(48));
  // Equal long-run rate...
  ASSERT_TRUE(two.long_run_rate().has_value());
  EXPECT_EQ(*two.long_run_rate(), Rational(1, 3));
  // ...but the split schedule delivers its first unit strictly earlier.
  EXPECT_LT(two.inverse(Work(1)), one.inverse(Work(1)));
  // And it is never behind by more than one slot's worth anywhere.
  for (std::int64_t t = 0; t <= 48; ++t) {
    EXPECT_GE(two.value(Time(t)) + Work(2), one.value(Time(t))) << t;
  }
}

TEST(ScheduleSupply, EveryPhasePatternConforms) {
  std::vector<bool> mask{true, false, true, true, false, false, true};
  const Supply supply = Supply::schedule(mask);
  const Staircase sbf = supply.sbf(Time(70));
  for (std::int64_t phase = 0;
       phase < static_cast<std::int64_t>(mask.size()); ++phase) {
    const ServicePattern p = pattern_schedule(mask, Time(phase), Time(70));
    EXPECT_TRUE(pattern_conforms(p, sbf)) << "phase " << phase;
  }
}

TEST(ScheduleSupply, StructuralAnalysisRunsOnSchedule) {
  const SporadicTask sp{"s", Work(2), Time(10), Time(10)};
  std::vector<bool> mask{true, false, false, true, false, false};
  const Supply supply = Supply::schedule(mask);
  const StructuralResult res = structural_delay(test::workspace(), sp.to_drt(), supply);
  ASSERT_FALSE(res.delay.is_unbounded());
  // First unit can be 2 ticks away (mask worst alignment), second
  // another 3: sbf^{-1}(2) = 5 at worst... assert via the library's own
  // consistency instead of a hand number:
  EXPECT_EQ(res.delay, supply.sbf(Time(12)).inverse(Work(2)));
}

TEST(ScheduleSupply, ParserRoundTrip) {
  const Supply s = parse_supply("schedule mask 010011");
  EXPECT_EQ(serialize_supply(s), "schedule mask 010011");
  EXPECT_EQ(s.long_run_rate(), Rational(1, 2));
  EXPECT_THROW((void)parse_supply("schedule mask 01x1"),
               std::invalid_argument);
  EXPECT_THROW((void)Supply::schedule({false, false}),
               std::invalid_argument);
  EXPECT_THROW((void)Supply::schedule({}), std::invalid_argument);
}

}  // namespace
}  // namespace strt
