#include <gtest/gtest.h>

#include "core/abstractions.hpp"
#include "curves/hull.hpp"
#include "graph/workload.hpp"
#include "model/generator.hpp"
#include "model/sporadic.hpp"
#include "testutil.hpp"

namespace strt {
namespace {

TEST(ConcaveHull, MajorizesAndIsConcave) {
  Rng rng(12);
  for (int trial = 0; trial < 20; ++trial) {
    const Staircase f = test::random_staircase(rng, Time(40), 6, 0.3);
    const Staircase h = concave_hull_staircase(f);
    for (std::int64_t t = 0; t <= 40; ++t) {
      EXPECT_GE(h.value(Time(t)), f.value(Time(t))) << "t=" << t;
    }
    // Concavity of the underlying hull => increments are non-increasing
    // up to integer rounding; check the exact hull vertices instead.
    const auto hull = concave_hull(f);
    for (std::size_t i = 2; i < hull.size(); ++i) {
      // slope(i-1) >= slope(i) via cross-multiplication.
      const auto& a = hull[i - 2];
      const auto& b = hull[i - 1];
      const auto& c = hull[i];
      const std::int64_t lhs = (b.value - a.value).count() *
                               (c.time - b.time).count();
      const std::int64_t rhs = (c.value - b.value).count() *
                               (b.time - a.time).count();
      EXPECT_GE(lhs, rhs) << "trial " << trial << " vertex " << i;
    }
  }
}

TEST(ConcaveHull, ExactOnConcaveInput) {
  // 2*ceil(t/5) staircase is already concave-ish at its step points; the
  // hull evaluated back on the grid may only add the interpolation between
  // steps, never change the step values.
  const Staircase f = Staircase::from_points(
      {Step{Time(1), Work(2)}, Step{Time(6), Work(4)},
       Step{Time(11), Work(6)}},
      Time(15));
  const Staircase h = concave_hull_staircase(f);
  EXPECT_EQ(h.value(Time(1)), Work(2));
  EXPECT_EQ(h.value(Time(6)), Work(4));
  EXPECT_EQ(h.value(Time(11)), Work(6));
  // Between steps the hull interpolates: h(3) = floor(2 + 2*(3-1)/5) = 2.
  EXPECT_EQ(h.value(Time(3)), Work(2));
  EXPECT_EQ(h.value(Time(4)), Work(3));  // 2 + 2*3/5 = 3.2
}

TEST(Abstractions, ArrivalCurvesAreOrderedPointwise) {
  Rng rng(77);
  for (int trial = 0; trial < 15; ++trial) {
    DrtGenParams params;
    params.min_vertices = 3;
    params.max_vertices = 6;
    params.min_separation = Time(3);
    params.max_separation = Time(15);
    params.target_utilization = 0.4;
    const DrtTask task = random_drt(rng, params).task;
    const Time h(120);
    const Staircase exact =
        abstracted_arrival(test::workspace(), task, WorkloadAbstraction::kExactCurve, h);
    const Staircase hull =
        abstracted_arrival(test::workspace(), task, WorkloadAbstraction::kConcaveHull, h);
    const Staircase bucket =
        abstracted_arrival(test::workspace(), task, WorkloadAbstraction::kTokenBucket, h);
    const Staircase sporadic =
        abstracted_arrival(test::workspace(), task, WorkloadAbstraction::kSporadicMinGap, h);
    for (std::int64_t t = 0; t <= h.count(); ++t) {
      const Work e = exact.value(Time(t));
      EXPECT_LE(e, hull.value(Time(t))) << "t=" << t;
      EXPECT_LE(hull.value(Time(t)), bucket.value(Time(t)))
          << "trial " << trial << " t=" << t;
      EXPECT_LE(e, sporadic.value(Time(t))) << "t=" << t;
    }
  }
}

TEST(Abstractions, DelayBoundsFollowTheHierarchy) {
  Rng rng(1234);
  int hull_gaps = 0;
  for (int trial = 0; trial < 15; ++trial) {
    DrtGenParams params;
    params.min_vertices = 3;
    params.max_vertices = 7;
    params.min_separation = Time(4);
    params.max_separation = Time(25);
    params.target_utilization = 0.45;
    const GeneratedTask gen = random_drt(rng, params);
    const DrtTask& task = gen.task;
    // Supply rate just above the utilization: the binding delay candidate
    // then sits deep in the busy window, where the hull is strictly above
    // the exact staircase.
    const std::int64_t slot = std::min<std::int64_t>(
        20, static_cast<std::int64_t>(
                gen.exact_utilization.to_double() * 20.0) +
                2);
    const Supply supply = Supply::tdma(Time(slot), Time(20));
    if (!(gen.exact_utilization < supply.long_run_rate())) continue;

    const auto st = delay_with_abstraction(test::workspace(), 
        task, supply, WorkloadAbstraction::kStructural);
    const auto ex = delay_with_abstraction(test::workspace(), 
        task, supply, WorkloadAbstraction::kExactCurve);
    const auto hu = delay_with_abstraction(test::workspace(), 
        task, supply, WorkloadAbstraction::kConcaveHull);
    const auto tb = delay_with_abstraction(test::workspace(), 
        task, supply, WorkloadAbstraction::kTokenBucket);
    const auto sp = delay_with_abstraction(test::workspace(), 
        task, supply, WorkloadAbstraction::kSporadicMinGap);

    ASSERT_FALSE(st.delay.is_unbounded()) << "trial " << trial;
    EXPECT_EQ(st.delay, ex.delay) << "trial " << trial;
    EXPECT_LE(ex.delay, hu.delay) << "trial " << trial;
    EXPECT_LE(hu.delay, tb.delay) << "trial " << trial;
    // kSporadicMinGap is not pointwise above the token bucket in general,
    // but it always dominates the exact curve.
    EXPECT_LE(ex.delay, sp.delay) << "trial " << trial;
    if (hu.delay > ex.delay) ++hull_gaps;
  }
  // The headline effect must actually show up: the hull abstraction is
  // strictly more pessimistic on a solid fraction of random tasks.
  EXPECT_GE(hull_gaps, 5);
}

TEST(Abstractions, SporadicMinGapOftenOverloads) {
  // A task whose dense prefix is fast but whose cycle is slow: the
  // min-gap abstraction claims rate wcet_max/sep_min and overloads.
  DrtBuilder b("bursty");
  const VertexId h = b.add_vertex("H", Work(4), Time(30));
  const VertexId l = b.add_vertex("L", Work(1), Time(10));
  b.add_edge(h, l, Time(4)).add_edge(l, h, Time(40));
  const DrtTask task = std::move(b).build();
  const Supply supply = Supply::tdma(Time(1), Time(2));  // rate 1/2
  const auto st =
      delay_with_abstraction(test::workspace(), task, supply, WorkloadAbstraction::kStructural);
  const auto sp = delay_with_abstraction(test::workspace(), task, supply,
                                         WorkloadAbstraction::kSporadicMinGap);
  EXPECT_FALSE(st.delay.is_unbounded());
  EXPECT_TRUE(sp.delay.is_unbounded());  // claimed rate 4/4 = 1 > 1/2
}

TEST(Abstractions, TokenBucketCoversExactCurveOnFittedHorizon) {
  const SporadicTask spor{"s", Work(3), Time(7), Time(7)};
  const DrtTask task = spor.to_drt();
  const Time h(140);
  const Staircase exact =
      abstracted_arrival(test::workspace(), task, WorkloadAbstraction::kExactCurve, h);
  const Staircase bucket =
      abstracted_arrival(test::workspace(), task, WorkloadAbstraction::kTokenBucket, h);
  for (std::int64_t t = 1; t <= h.count(); ++t) {
    EXPECT_GE(bucket.value(Time(t)), exact.value(Time(t))) << t;
  }
}

TEST(Abstractions, NamesAreStable) {
  EXPECT_EQ(abstraction_name(WorkloadAbstraction::kStructural),
            "structural");
  EXPECT_EQ(abstraction_name(WorkloadAbstraction::kExactCurve),
            "exact-curve");
  EXPECT_EQ(abstraction_name(WorkloadAbstraction::kConcaveHull),
            "concave-hull");
  EXPECT_EQ(abstraction_name(WorkloadAbstraction::kTokenBucket),
            "token-bucket");
  EXPECT_EQ(abstraction_name(WorkloadAbstraction::kSporadicMinGap),
            "sporadic-min-gap");
}

TEST(Abstractions, StructuralIsNotACurve) {
  EXPECT_THROW((void)abstracted_arrival(test::workspace(), test::small_task(),
                                        WorkloadAbstraction::kStructural,
                                        Time(50)),
               std::invalid_argument);
}

}  // namespace
}  // namespace strt
