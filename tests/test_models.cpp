#include <gtest/gtest.h>

#include "graph/cycle_ratio.hpp"
#include "graph/workload.hpp"
#include "model/generator.hpp"
#include "model/gmf.hpp"
#include "model/recurring.hpp"
#include "model/sporadic.hpp"

namespace strt {
namespace {

TEST(Sporadic, ToDrtShape) {
  const DrtTask t = SporadicTask{"s", Work(2), Time(5), Time(4)}.to_drt();
  EXPECT_EQ(t.vertex_count(), 1u);
  EXPECT_EQ(t.edge_count(), 1u);
  EXPECT_EQ(t.vertex(0).wcet, Work(2));
  EXPECT_EQ(t.vertex(0).deadline, Time(4));
  EXPECT_TRUE(t.is_cyclic());
}

TEST(Sporadic, RejectsBadParameters) {
  const SporadicTask zero_wcet{"s", Work(0), Time(5), Time(5)};
  EXPECT_THROW((void)zero_wcet.to_drt(), std::invalid_argument);
  const SporadicTask zero_period{"s", Work(1), Time(0), Time(5)};
  EXPECT_THROW((void)zero_period.to_drt(), std::invalid_argument);
}

TEST(Gmf, ValidatesFrames) {
  EXPECT_THROW(GmfTask("g", {}), std::invalid_argument);
  EXPECT_THROW(GmfTask("g", {GmfFrame{Work(0), Time(1), Time(1)}}),
               std::invalid_argument);
}

TEST(Gmf, RingUtilization) {
  const GmfTask gmf("g", {GmfFrame{Work(2), Time(4), Time(4)},
                          GmfFrame{Work(1), Time(6), Time(6)}});
  const auto u = utilization(gmf.to_drt());
  ASSERT_TRUE(u.has_value());
  EXPECT_EQ(*u, Rational(3, 10));
}

TEST(Gmf, SingleFrameEqualsSporadic) {
  const GmfTask gmf("g", {GmfFrame{Work(3), Time(7), Time(7)}});
  const SporadicTask sp{"s", Work(3), Time(7), Time(7)};
  const Staircase a = rbf(gmf.to_drt(), Time(60));
  const Staircase b = rbf(sp.to_drt(), Time(60));
  for (std::int64_t t = 0; t <= 60; ++t) {
    EXPECT_EQ(a.value(Time(t)), b.value(Time(t))) << t;
  }
}

TEST(Recurring, BuildsTreeWithRestarts) {
  RecurringTaskBuilder b("rec");
  const VertexId root = b.set_root("R", Work(2), Time(5));
  const VertexId l = b.add_child(root, "L", Work(1), Time(5), Time(5));
  const VertexId r = b.add_child(root, "Rt", Work(4), Time(10), Time(8));
  (void)l;
  (void)r;
  b.with_global_period(Time(20));
  const DrtTask task = std::move(b).build();
  EXPECT_EQ(task.vertex_count(), 3u);
  // Two tree edges + two restart edges.
  EXPECT_EQ(task.edge_count(), 4u);
  EXPECT_TRUE(task.is_cyclic());
  // Restart separations: 20 - 5 = 15 and 20 - 8 = 12.
  std::multiset<std::int64_t> restart_seps;
  for (const DrtEdge& e : task.edges()) {
    if (e.to == root && e.from != root) {
      restart_seps.insert(e.separation.count());
    }
  }
  EXPECT_EQ(restart_seps, (std::multiset<std::int64_t>{12, 15}));
}

TEST(Recurring, GlobalPeriodMustExceedSpan) {
  RecurringTaskBuilder b("rec");
  const VertexId root = b.set_root("R", Work(1), Time(5));
  b.add_child(root, "L", Work(1), Time(5), Time(25));
  EXPECT_THROW(b.with_global_period(Time(20)), std::invalid_argument);
}

TEST(Recurring, RootMustComeFirst) {
  RecurringTaskBuilder b("rec");
  EXPECT_THROW((void)b.add_child(0, "X", Work(1), Time(1), Time(1)),
               std::invalid_argument);
  (void)b.set_root("R", Work(1), Time(1));
  EXPECT_THROW((void)b.set_root("R2", Work(1), Time(1)),
               std::invalid_argument);
}

TEST(Recurring, BranchingShowsInRbf) {
  // Root then one heavy XOR one light child; rbf must take the heavy one.
  RecurringTaskBuilder b("rec");
  const VertexId root = b.set_root("R", Work(1), Time(4));
  b.add_child(root, "heavy", Work(6), Time(10), Time(4));
  b.add_child(root, "light", Work(1), Time(10), Time(4));
  b.with_global_period(Time(30));
  const DrtTask task = std::move(b).build();
  const Staircase f = rbf(task, Time(20));
  EXPECT_EQ(f.value(Time(1)), Work(6));  // heavy alone
  EXPECT_EQ(f.value(Time(5)), Work(7));  // root + heavy (span 4)
}

TEST(Generator, ProducesValidCyclicTasks) {
  Rng rng(1);
  for (int trial = 0; trial < 20; ++trial) {
    DrtGenParams params;
    params.target_utilization = 0.05 + 0.85 * rng.uniform_real();
    const GeneratedTask g = random_drt(rng, params);
    EXPECT_GE(g.task.vertex_count(), params.min_vertices);
    EXPECT_LE(g.task.vertex_count(), params.max_vertices);
    EXPECT_TRUE(g.task.is_cyclic());
    const auto u = utilization(g.task);
    ASSERT_TRUE(u.has_value());
    EXPECT_EQ(*u, g.exact_utilization);
    EXPECT_GT(g.exact_utilization, Rational(0));
  }
}

TEST(Generator, FrameSeparationWhenFactorAtMostOne) {
  Rng rng(2);
  DrtGenParams params;
  params.deadline_factor = 1.0;
  for (int trial = 0; trial < 10; ++trial) {
    EXPECT_TRUE(random_drt(rng, params).task.has_frame_separation());
  }
}

TEST(Generator, UtilizationTracksTarget) {
  Rng rng(3);
  DrtGenParams params;
  params.min_separation = Time(50);
  params.max_separation = Time(200);
  for (double target : {0.1, 0.3, 0.6, 0.9}) {
    params.target_utilization = target;
    double sum = 0;
    const int n = 10;
    for (int i = 0; i < n; ++i) {
      sum += random_drt(rng, params).exact_utilization.to_double();
    }
    EXPECT_NEAR(sum / n, target, 0.25 * target + 0.05) << target;
  }
}

TEST(Generator, SetSplitsUtilization) {
  Rng rng(4);
  const auto set = random_drt_set(rng, 4, 0.6);
  ASSERT_EQ(set.size(), 4u);
  double total = 0;
  for (const auto& g : set) total += g.exact_utilization.to_double();
  EXPECT_NEAR(total, 0.6, 0.35);
}

}  // namespace
}  // namespace strt
