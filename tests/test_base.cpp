#include <gtest/gtest.h>

#include <set>

#include "base/checked.hpp"
#include "base/rational.hpp"
#include "base/rng.hpp"
#include "base/types.hpp"

namespace strt {
namespace {

using namespace strt::literals;

TEST(Quantity, BasicArithmetic) {
  EXPECT_EQ((Time(3) + Time(4)).count(), 7);
  EXPECT_EQ((Time(10) - Time(4)).count(), 6);
  EXPECT_EQ((Time(3) * 5).count(), 15);
  EXPECT_EQ((5 * Time(3)).count(), 15);
  EXPECT_LT(Time(3), Time(4));
  EXPECT_EQ(Work(2) + Work(2), Work(4));
}

TEST(Quantity, CompoundAssignment) {
  Time t(5);
  t += Time(3);
  EXPECT_EQ(t, Time(8));
  t -= Time(2);
  EXPECT_EQ(t, Time(6));
  ++t;
  EXPECT_EQ(t, Time(7));
}

TEST(Quantity, UnboundedIsSticky) {
  const Time inf = Time::unbounded();
  EXPECT_TRUE(inf.is_unbounded());
  EXPECT_TRUE((inf + Time(5)).is_unbounded());
  EXPECT_TRUE((inf - Time(5)).is_unbounded());
  EXPECT_TRUE((inf * 3).is_unbounded());
  EXPECT_TRUE((Time(5) + inf).is_unbounded());
  EXPECT_GT(inf, Time(1'000'000'000));
}

TEST(Quantity, OverflowThrows) {
  const Time big(std::numeric_limits<std::int64_t>::max() - 1);
  EXPECT_THROW((void)(big + Time(5)), OverflowError);
  EXPECT_THROW((void)(big * 2), OverflowError);
}

TEST(Quantity, Literals) {
  EXPECT_EQ(5_t, Time(5));
  EXPECT_EQ(7_w, Work(7));
}

TEST(Quantity, MinMax) {
  EXPECT_EQ(max(Time(3), Time(9)), Time(9));
  EXPECT_EQ(min(Work(3), Work(9)), Work(3));
}

TEST(Checked, FloorCeilDiv) {
  EXPECT_EQ(checked::floor_div(7, 2), 3);
  EXPECT_EQ(checked::floor_div(-7, 2), -4);
  EXPECT_EQ(checked::ceil_div(7, 2), 4);
  EXPECT_EQ(checked::ceil_div(-7, 2), -3);
  EXPECT_EQ(checked::floor_div(6, 3), 2);
  EXPECT_EQ(checked::ceil_div(6, 3), 2);
  EXPECT_THROW((void)checked::floor_div(1, 0), OverflowError);
}

TEST(Checked, ModFloor) {
  EXPECT_EQ(checked::mod_floor(7, 3), 1);
  EXPECT_EQ(checked::mod_floor(-7, 3), 2);
  EXPECT_EQ(checked::mod_floor(6, 3), 0);
}

TEST(Checked, SatAdd) {
  EXPECT_EQ(checked::sat_add(1, 2), 3);
  EXPECT_EQ(checked::sat_add(std::numeric_limits<std::int64_t>::max(), 1),
            std::numeric_limits<std::int64_t>::max());
  EXPECT_EQ(checked::sat_add(std::numeric_limits<std::int64_t>::min(), -1),
            std::numeric_limits<std::int64_t>::min());
}

TEST(Rational, NormalizesOnConstruction) {
  const Rational r(6, 4);
  EXPECT_EQ(r.num(), 3);
  EXPECT_EQ(r.den(), 2);
  const Rational neg(3, -6);
  EXPECT_EQ(neg.num(), -1);
  EXPECT_EQ(neg.den(), 2);
  EXPECT_THROW(Rational(1, 0), std::invalid_argument);
}

TEST(Rational, Arithmetic) {
  EXPECT_EQ(Rational(1, 2) + Rational(1, 3), Rational(5, 6));
  EXPECT_EQ(Rational(1, 2) - Rational(1, 3), Rational(1, 6));
  EXPECT_EQ(Rational(2, 3) * Rational(3, 4), Rational(1, 2));
  EXPECT_EQ(Rational(1, 2) / Rational(1, 4), Rational(2));
  EXPECT_EQ(-Rational(1, 2), Rational(-1, 2));
}

TEST(Rational, ExactComparison) {
  EXPECT_LT(Rational(1, 3), Rational(1, 2));
  EXPECT_LT(Rational(333'333'333, 1'000'000'000), Rational(1, 3));
  EXPECT_GE(Rational(2, 6), Rational(1, 3));
  EXPECT_EQ(Rational(2, 6), Rational(1, 3));
}

TEST(Rational, FloorCeil) {
  EXPECT_EQ(Rational(7, 2).floor(), 3);
  EXPECT_EQ(Rational(7, 2).ceil(), 4);
  EXPECT_EQ(Rational(-7, 2).floor(), -4);
  EXPECT_EQ(Rational(-7, 2).ceil(), -3);
  EXPECT_EQ(Rational(4).floor(), 4);
  EXPECT_EQ(Rational(4).ceil(), 4);
}

TEST(Rational, ToString) {
  EXPECT_EQ(Rational(3, 4).to_string(), "3/4");
  EXPECT_EQ(Rational(5).to_string(), "5");
}

TEST(Rng, Deterministic) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, SeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next() == b.next()) ++same;
  }
  EXPECT_LT(same, 3);
}

TEST(Rng, UniformIntInRange) {
  Rng rng(7);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const std::int64_t v = rng.uniform_int(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 7u);  // all values hit
}

TEST(Rng, UniformIntSingleton) {
  Rng rng(7);
  EXPECT_EQ(rng.uniform_int(5, 5), 5);
  EXPECT_THROW((void)rng.uniform_int(2, 1), std::invalid_argument);
}

TEST(Rng, UniformRealInRange) {
  Rng rng(9);
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.uniform_real();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(Rng, SplitIndependence) {
  Rng a(11);
  Rng b = a.split();
  EXPECT_NE(a.next(), b.next());
}

TEST(UUniFast, SumsToTotal) {
  Rng rng(123);
  for (int trial = 0; trial < 20; ++trial) {
    const auto u = uunifast(rng, 5, 0.8);
    ASSERT_EQ(u.size(), 5u);
    double sum = 0;
    for (double x : u) {
      EXPECT_GT(x, 0.0);
      EXPECT_LT(x, 0.8);
      sum += x;
    }
    EXPECT_NEAR(sum, 0.8, 1e-9);
  }
}

TEST(UUniFast, SingleTask) {
  Rng rng(5);
  const auto u = uunifast(rng, 1, 0.5);
  ASSERT_EQ(u.size(), 1u);
  EXPECT_DOUBLE_EQ(u[0], 0.5);
}

}  // namespace
}  // namespace strt
