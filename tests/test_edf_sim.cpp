#include <gtest/gtest.h>

#include "core/edf.hpp"
#include "model/generator.hpp"
#include "model/sporadic.hpp"
#include "sim/edf_sim.hpp"
#include "sim/service.hpp"
#include "sim/trace.hpp"
#include "testutil.hpp"

namespace strt {
namespace {

TEST(EdfSim, MeetsObviousDeadlines) {
  const std::vector<EdfJob> jobs{
      EdfJob{Time(0), Work(2), Time(4), 0},
      EdfJob{Time(1), Work(1), Time(3), 1},
  };
  const EdfOutcome out = simulate_edf(jobs, pattern_constant(1, Time(10)));
  EXPECT_FALSE(out.first_miss.has_value());
  EXPECT_EQ(out.completed, 2u);
  EXPECT_TRUE(out.all_completed);
}

TEST(EdfSim, PicksEarlierDeadlineFirst) {
  // Without EDF ordering the tight job (released later, tighter deadline)
  // would miss behind the loose one.
  const std::vector<EdfJob> jobs{
      EdfJob{Time(0), Work(3), Time(10), 0},  // loose
      EdfJob{Time(1), Work(2), Time(3), 1},   // tight, must preempt
  };
  const EdfOutcome out = simulate_edf(jobs, pattern_constant(1, Time(10)));
  EXPECT_FALSE(out.first_miss.has_value());
}

TEST(EdfSim, DetectsMiss) {
  const std::vector<EdfJob> jobs{
      EdfJob{Time(0), Work(3), Time(2), 0},  // needs 3 ticks, deadline 2
  };
  const EdfOutcome out = simulate_edf(jobs, pattern_constant(1, Time(10)));
  ASSERT_TRUE(out.first_miss.has_value());
  EXPECT_EQ(out.first_miss->stream, 0u);
}

TEST(EdfSim, MissDetectedAtCompletionPastDeadline) {
  // Completes exactly one tick after the deadline.
  const std::vector<EdfJob> jobs{
      EdfJob{Time(0), Work(3), Time(3), 0},
      EdfJob{Time(0), Work(1), Time(1), 1},
  };
  const EdfOutcome out = simulate_edf(jobs, pattern_constant(1, Time(10)));
  ASSERT_TRUE(out.first_miss.has_value());
  EXPECT_EQ(out.first_miss->stream, 0u);  // pushed past its deadline
}

TEST(EdfSim, AcceptedSetsNeverMissInRandomRuns) {
  // End-to-end validation of the demand-bound criterion.
  Rng rng(333);
  int validated = 0;
  while (validated < 6) {
    DrtGenParams params;
    params.min_vertices = 2;
    params.max_vertices = 4;
    params.min_separation = Time(6);
    params.max_separation = Time(24);
    params.deadline_factor = 1.0;  // frame separated
    auto gen = random_drt_set(rng, 3, 0.55, params);
    std::vector<DrtTask> tasks;
    for (auto& g : gen) tasks.push_back(std::move(g.task));

    const Supply supply = Supply::tdma(Time(4), Time(6));
    EdfResult verdict;
    try {
      verdict = edf_schedulable(test::workspace(), tasks, supply);
    } catch (const std::invalid_argument&) {
      continue;  // not frame separated (generator edge case)
    }
    if (!verdict.schedulable) continue;
    ++validated;

    const Time horizon(600);
    for (int run = 0; run < 8; ++run) {
      std::vector<EdfJob> jobs;
      for (std::size_t i = 0; i < tasks.size(); ++i) {
        const Trace tr = run % 2 == 0
                             ? trace_dense_walk(tasks[i], rng, Time(400))
                             : trace_random_walk(tasks[i], rng, Time(400),
                                                 0.4, Time(8));
        const auto js = edf_jobs_of_trace(tasks[i], tr, i);
        jobs.insert(jobs.end(), js.begin(), js.end());
      }
      const ServicePattern pattern =
          pattern_tdma(Time(4), Time(6),
                       Time(rng.uniform_int(0, 5)), horizon);
      const EdfOutcome out = simulate_edf(jobs, pattern);
      EXPECT_FALSE(out.first_miss.has_value())
          << "validated-set " << validated << " run " << run << " stream "
          << (out.first_miss ? out.first_miss->stream : 0);
    }
  }
}

TEST(EdfSim, JobsOfTraceUsesVertexDeadlines) {
  const DrtTask task = test::small_task();
  Rng rng(5);
  const Trace tr = trace_dense_walk(task, rng, Time(60));
  const auto jobs = edf_jobs_of_trace(task, tr, 7);
  ASSERT_EQ(jobs.size(), tr.size());
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    EXPECT_EQ(jobs[i].stream, 7u);
    EXPECT_EQ(jobs[i].absolute_deadline,
              tr[i].release + task.vertex(tr[i].vertex).deadline);
  }
}

}  // namespace
}  // namespace strt
