#include <gtest/gtest.h>

#include "core/curve_based.hpp"
#include "core/structural.hpp"
#include "curves/builders.hpp"
#include "model/generator.hpp"
#include "model/sporadic.hpp"
#include "sim/fifo.hpp"
#include "sim/oracle.hpp"
#include "sim/service.hpp"
#include "sim/trace.hpp"
#include "testutil.hpp"

namespace strt {
namespace {

TEST(BusyWindow, SporadicOnDedicated) {
  const SporadicTask sp{"s", Work(2), Time(5), Time(5)};
  const auto bw = busy_window(test::workspace(), sp.to_drt(), Supply::dedicated(1));
  ASSERT_TRUE(bw.has_value());
  // rbf(t) = 2*ceil(t/5) vs sbf(t) = t: rbf(1)=2>1, rbf(2)=2<=2.
  EXPECT_EQ(bw->length, Time(2));
}

TEST(BusyWindow, OverloadReturnsNullopt) {
  const SporadicTask sp{"s", Work(6), Time(5), Time(5)};  // U = 6/5 > 1
  EXPECT_FALSE(busy_window(test::workspace(), sp.to_drt(), Supply::dedicated(1)).has_value());
  // Exactly at the rate is also overload (no finite busy window).
  const SporadicTask full{"f", Work(5), Time(5), Time(5)};
  EXPECT_FALSE(busy_window(test::workspace(), full.to_drt(), Supply::dedicated(1)).has_value());
}

TEST(Structural, SporadicOnDedicatedIsWcet) {
  const SporadicTask sp{"s", Work(3), Time(7), Time(7)};
  const StructuralResult res =
      structural_delay(test::workspace(), sp.to_drt(), Supply::dedicated(1));
  EXPECT_EQ(res.delay, Time(3));
  EXPECT_EQ(res.backlog, Work(3));
  EXPECT_EQ(res.busy_window, Time(3));  // rbf(3)=3<=3
  ASSERT_EQ(res.witness.size(), 1u);
  EXPECT_EQ(res.witness[0].delay, Time(3));
}

TEST(Structural, OverloadIsUnbounded) {
  const SporadicTask sp{"s", Work(9), Time(5), Time(5)};
  const StructuralResult res =
      structural_delay(test::workspace(), sp.to_drt(), Supply::dedicated(1));
  EXPECT_TRUE(res.delay.is_unbounded());
  EXPECT_TRUE(res.backlog.is_unbounded());
}

TEST(Structural, HandComputedTdmaExample) {
  // Sporadic e=2, p=10 on TDMA slot 2 of cycle 6:
  // sbf(t) = 2*floor(t/6) + max(0, t mod 6 - 4): 0,0,0,0,0,1,2,...
  // rbf(t) = 2*ceil(t/10): first catch-up at t=6 (2 <= 2) -> L=6.
  // Single job of work 2 at release 0: finish = sbf^{-1}(2) = 6.
  const SporadicTask sp{"s", Work(2), Time(10), Time(10)};
  const StructuralResult res =
      structural_delay(test::workspace(), sp.to_drt(), Supply::tdma(Time(2), Time(6)));
  EXPECT_EQ(res.delay, Time(6));
  EXPECT_EQ(res.busy_window, Time(6));
}

TEST(Structural, NeverExceedsCurveBound) {
  Rng rng(777);
  for (int trial = 0; trial < 25; ++trial) {
    DrtGenParams params;
    params.min_vertices = 3;
    params.max_vertices = 7;
    params.min_separation = Time(3);
    params.max_separation = Time(20);
    params.target_utilization = 0.25 + 0.5 * rng.uniform_real();
    const DrtTask task = random_drt(rng, params).task;
    const Supply supply = Supply::dedicated(1);
    const StructuralResult st = structural_delay(test::workspace(), task, supply);
    const CurveResult cv = curve_delay(test::workspace(), task, supply);
    ASSERT_FALSE(st.delay.is_unbounded()) << "trial " << trial;
    EXPECT_LE(st.delay, cv.delay) << "trial " << trial;
    EXPECT_LE(st.backlog, cv.backlog) << "trial " << trial;
    EXPECT_EQ(st.busy_window, cv.busy_window) << "trial " << trial;
  }
}

TEST(Structural, MatchesOracleOnSmallTasks) {
  Rng rng(4242);
  for (int trial = 0; trial < 15; ++trial) {
    DrtGenParams params;
    params.min_vertices = 2;
    params.max_vertices = 4;
    params.min_separation = Time(2);
    params.max_separation = Time(8);
    params.chord_probability = 0.2;
    params.target_utilization = 0.5;
    const DrtTask task = random_drt(rng, params).task;
    const Supply supply =
        trial % 2 == 0 ? Supply::dedicated(1) : Supply::tdma(Time(3), Time(4));
    const auto bw = busy_window(test::workspace(), task, supply);
    ASSERT_TRUE(bw.has_value()) << "trial " << trial;
    const StructuralResult st = structural_delay(test::workspace(), task, supply);
    const OracleResult oracle = oracle_worst_delay(
        task, bw->sbf, max(Time(0), bw->length - Time(1)));
    // The oracle can never exceed the bound...
    EXPECT_LE(oracle.delay, st.delay) << "trial " << trial;
    EXPECT_LE(oracle.backlog, st.backlog) << "trial " << trial;
    // ...and the structural analysis is exact on these instances.
    EXPECT_EQ(oracle.delay, st.delay) << "trial " << trial;
    EXPECT_EQ(oracle.backlog, st.backlog) << "trial " << trial;
  }
}

TEST(Structural, PruningDoesNotChangeTheBound) {
  Rng rng(99);
  for (int trial = 0; trial < 10; ++trial) {
    DrtGenParams params;
    params.min_vertices = 3;
    params.max_vertices = 5;
    params.min_separation = Time(2);
    params.max_separation = Time(10);
    params.target_utilization = 0.4;
    const DrtTask task = random_drt(rng, params).task;
    StructuralOptions pruned;
    StructuralOptions full;
    full.prune = false;
    const Supply supply = Supply::dedicated(1);
    const StructuralResult a = structural_delay(test::workspace(), task, supply, pruned);
    const StructuralResult b = structural_delay(test::workspace(), task, supply, full);
    EXPECT_EQ(a.delay, b.delay) << "trial " << trial;
    EXPECT_EQ(a.backlog, b.backlog) << "trial " << trial;
    EXPECT_LE(a.stats.expanded, b.stats.expanded) << "trial " << trial;
  }
}

TEST(Structural, WitnessReplayReproducesTheBound) {
  // Replaying the witness path against the minimal conforming service
  // pattern must observe exactly the claimed delay.
  Rng rng(31337);
  for (int trial = 0; trial < 10; ++trial) {
    DrtGenParams params;
    params.min_vertices = 3;
    params.max_vertices = 6;
    params.min_separation = Time(2);
    params.max_separation = Time(12);
    params.target_utilization = 0.45;
    const DrtTask task = random_drt(rng, params).task;
    const Supply supply = Supply::tdma(Time(2), Time(3));
    const auto bw = busy_window(test::workspace(), task, supply);
    ASSERT_TRUE(bw.has_value());
    const StructuralResult st = structural_delay(test::workspace(), task, supply);
    ASSERT_FALSE(st.witness.empty());

    Trace trace;
    for (const WitnessJob& j : st.witness) {
      trace.push_back(SimJob{j.release, j.wcet, 0});
    }
    const Time horizon = bw->sbf.inverse(trace.back().wcet +
                                         st.witness.back().cumulative) +
                         Time(2);
    const SimOutcome out =
        simulate_fifo(trace, pattern_from_sbf(bw->sbf, horizon));
    ASSERT_TRUE(out.all_completed) << "trial " << trial;
    EXPECT_EQ(out.max_delay, st.delay) << "trial " << trial;
  }
}

TEST(Structural, SimulatedRandomRunsNeverExceedTheBound) {
  Rng rng(2718);
  for (int trial = 0; trial < 10; ++trial) {
    DrtGenParams params;
    params.min_vertices = 3;
    params.max_vertices = 6;
    params.min_separation = Time(3);
    params.max_separation = Time(15);
    params.target_utilization = 0.4;
    const DrtTask task = random_drt(rng, params).task;
    const Supply supply = Supply::periodic(Time(3), Time(5));
    const StructuralResult st = structural_delay(test::workspace(), task, supply);
    ASSERT_FALSE(st.delay.is_unbounded());

    const Time sim_horizon(400);
    for (int run = 0; run < 20; ++run) {
      const Trace trace =
          trace_random_walk(task, rng, Time(300), 0.3, Time(8));
      Rng prng = rng.split();
      const ServicePattern pattern = pattern_periodic_server(
          Time(3), Time(5),
          run % 2 == 0 ? BudgetPlacement::kWorstCase : BudgetPlacement::kRandom,
          sim_horizon, &prng);
      const SimOutcome out = simulate_fifo(trace, pattern);
      for (const CompletedJob& j : out.jobs) {
        EXPECT_LE(j.delay, st.delay) << "trial " << trial << " run " << run;
      }
    }
  }
}

TEST(Structural, EqualsExactCurveBoundForSingleStream) {
  // Bridge theorem: for a single stream the discrete hdev candidates at
  // the rbf steps are exactly the Pareto frontier states of the
  // structural exploration, so the two analyses coincide.  (The gap the
  // paper targets opens only for the coarser curve classes practical
  // tools use -- see test_abstractions.)
  Rng rng(606060);
  for (int trial = 0; trial < 15; ++trial) {
    DrtGenParams params;
    params.min_vertices = 2;
    params.max_vertices = 6;
    params.min_separation = Time(2);
    params.max_separation = Time(18);
    params.target_utilization = 0.2 + 0.5 * rng.uniform_real();
    const DrtTask task = random_drt(rng, params).task;
    const Supply supply =
        trial % 2 == 0 ? Supply::tdma(Time(2), Time(3)) : Supply::dedicated(1);
    const StructuralResult st = structural_delay(test::workspace(), task, supply);
    const CurveResult cv = curve_delay(test::workspace(), task, supply);
    ASSERT_FALSE(st.delay.is_unbounded()) << "trial " << trial;
    EXPECT_EQ(st.delay, cv.delay) << "trial " << trial;
    EXPECT_EQ(st.backlog, cv.backlog) << "trial " << trial;
  }
}

TEST(Structural, VsArbitraryServiceCurve) {
  const SporadicTask sp{"s", Work(2), Time(6), Time(6)};
  const Staircase service = curve::rate_latency(Rational(1, 2), Time(3),
                                                Time(200));
  const StructuralResult st = structural_delay_vs(test::workspace(), sp.to_drt(), service);
  // First job: finish = inverse(2) = 3 + 4 = 7, delay 7.
  EXPECT_EQ(st.delay, Time(7));
}

TEST(CurveBased, SporadicOnDedicated) {
  const SporadicTask sp{"s", Work(3), Time(7), Time(7)};
  const CurveResult res = curve_delay(test::workspace(), sp.to_drt(), Supply::dedicated(1));
  EXPECT_EQ(res.delay, Time(3));
  EXPECT_EQ(res.backlog, Work(3));
}

TEST(CurveBased, OverloadIsUnbounded) {
  const SporadicTask sp{"s", Work(9), Time(5), Time(5)};
  const CurveResult res = curve_delay(test::workspace(), sp.to_drt(), Supply::dedicated(1));
  EXPECT_TRUE(res.delay.is_unbounded());
}

}  // namespace
}  // namespace strt
