// Fuzz harness for io/curve_csv raw-sample ingestion.
//
// read_curve_points_csv() promises: every problem is a diagnostic, and
// `points` is empty unless diagnostics.ok().  The harness feeds the raw
// bytes straight in and aborts if that contract breaks, or if an
// accepted sample set violates what the curve lints claim to enforce
// (no negative coordinates; no later-in-time sample strictly below an
// earlier one).
#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <cstdlib>
#include <numeric>
#include <string_view>
#include <vector>

#include "io/curve_csv.hpp"

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  if (size > (1u << 20)) return 0;  // bound allocator abuse
  const std::string_view text(reinterpret_cast<const char*>(data), size);
  const strt::CurveReadResult result = strt::read_curve_points_csv(text);
  const std::vector<strt::Step>& pts = result.points;
  if (!result.diagnostics.ok() && !pts.empty()) std::abort();
  for (const strt::Step& p : pts) {
    if (p.time < strt::Time(0) || p.value < strt::Work(0)) std::abort();
  }
  // Accepted samples may sit in any file order; in *time* order the
  // values must never drop.
  std::vector<std::size_t> order(pts.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    if (pts[a].time != pts[b].time) return pts[a].time < pts[b].time;
    return pts[a].value < pts[b].value;
  });
  strt::Work running_max{0};
  strt::Time max_at{0};
  for (const std::size_t i : order) {
    if (pts[i].time > max_at && pts[i].value < running_max) std::abort();
    if (pts[i].value > running_max) {
      running_max = pts[i].value;
      max_at = pts[i].time;
    }
  }
  return 0;
}
