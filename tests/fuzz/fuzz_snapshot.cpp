// Fuzz harness for the strt.engine.snapshot.v1 decoder.
//
// decode() promises: arbitrary bytes either decode cleanly (ok, empty
// error) or are rejected whole (not ok, non-empty error, nothing
// materialized) -- never a crash, never an unbounded allocation.
// decode() checks framing and checksums only; record-level curve
// validation is the loader's job (Workspace::load_snapshot re-validates
// every record).  What decode() does guarantee, and what this harness
// asserts:
//
//   * no exception escapes (std::abort via the noexcept wrapper below);
//   * rejected input carries a reason and zero entries;
//   * accepted input re-encodes and re-decodes to the same sections
//     (round-trip stability, the property the warm-start cache relies
//     on for save -> load -> save byte-identity).
#include <cstddef>
#include <cstdint>
#include <cstdlib>
#include <string>
#include <string_view>

#include "snapshot/snapshot.hpp"

namespace {

int run_one(const std::uint8_t* data, std::size_t size) {
  const std::string_view bytes(reinterpret_cast<const char*>(data), size);
  const strt::snapshot::DecodeResult first = strt::snapshot::decode(bytes);
  if (!first.ok) {
    if (first.error.empty()) std::abort();
    if (first.snap.entry_count() != 0) std::abort();
    return 0;
  }
  // Accepted: the codec must be a bijection on its accepted set.
  const std::string re = strt::snapshot::encode(first.snap);
  const strt::snapshot::DecodeResult second = strt::snapshot::decode(re);
  if (!second.ok) std::abort();
  if (!(second.snap.curves == first.snap.curves) ||
      !(second.snap.rbf == first.snap.rbf) ||
      !(second.snap.dbf == first.snap.dbf) ||
      !(second.snap.sbf == first.snap.sbf) ||
      !(second.snap.derived == first.snap.derived) ||
      !(second.snap.coarse == first.snap.coarse)) {
    std::abort();
  }
  return 0;
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  if (size > (1u << 20)) return 0;  // bound allocator abuse
  try {
    return run_one(data, size);
  } catch (...) {
    std::abort();  // decode() must never throw
  }
}
