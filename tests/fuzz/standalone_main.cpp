// Fallback driver for the fuzz harnesses on toolchains without
// libFuzzer (the local gcc build): replays every file of the given
// corpus paths through LLVMFuzzerTestOneInput, exactly as
// `./fuzz_target corpus/` would under libFuzzer's -runs=0.  Used by the
// ctest smoke tests so the harness contracts stay exercised in every
// build, not just STRT_FUZZ ones.
#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size);

namespace {

int run_file(const std::filesystem::path& path) {
  std::ifstream is(path, std::ios::binary);
  if (!is) {
    std::fprintf(stderr, "cannot open %s\n", path.string().c_str());
    return 1;
  }
  std::string bytes(std::filesystem::file_size(path), '\0');
  is.read(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  bytes.resize(static_cast<std::size_t>(is.gcount()));
  (void)LLVMFuzzerTestOneInput(
      reinterpret_cast<const std::uint8_t*>(bytes.data()), bytes.size());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::filesystem::path> files;
  for (int i = 1; i < argc; ++i) {
    const std::filesystem::path p(argv[i]);
    if (std::filesystem::is_directory(p)) {
      for (const auto& entry :
           std::filesystem::recursive_directory_iterator(p)) {
        if (entry.is_regular_file()) files.push_back(entry.path());
      }
    } else {
      files.push_back(p);
    }
  }
  if (files.empty()) {
    std::fprintf(stderr, "usage: %s <corpus file or dir>...\n", argv[0]);
    return 1;
  }
  int rc = 0;
  for (const auto& f : files) rc |= run_file(f);
  std::printf("replayed %zu corpus file(s)\n", files.size());
  return rc;
}
