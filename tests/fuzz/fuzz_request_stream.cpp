// Fuzz harness for the svc request-stream parsers (JSONL and CSV).
//
// Input layout: the first byte selects the wire format (even = JSONL,
// odd = CSV), the rest is the stream text, fed through
// read_request_stream() exactly as strt_serve feeds stdin.  The CSV
// task_dir points at a directory that does not exist, so task-file
// references resolve to clean diagnostics instead of local file reads.
//
// The harness asserts the parser contract rather than just "no crash":
// a RequestParse either carries a request and clean diagnostics, or no
// request and at least one error -- never a mix.
#include <cstddef>
#include <cstdint>
#include <cstdlib>
#include <sstream>
#include <string>
#include <vector>

#include "svc/request_stream.hpp"

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  if (size == 0 || size > (1u << 20)) return 0;  // bound allocator abuse
  const auto format = (data[0] % 2 == 0) ? strt::svc::StreamFormat::kJsonl
                                         : strt::svc::StreamFormat::kCsv;
  const std::string text(reinterpret_cast<const char*>(data + 1), size - 1);
  std::istringstream is(text);
  const std::vector<strt::svc::RequestParse> parses =
      strt::svc::read_request_stream(is, format,
                                     "fuzz-no-such-task-dir");
  for (const strt::svc::RequestParse& p : parses) {
    if (p.request.has_value() != p.diagnostics.ok()) std::abort();
  }
  return 0;
}
