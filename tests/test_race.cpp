// strt::race -- lockdep lock-order analysis, the vector-clock
// happens-before checker, and the deterministic interleaving explorer.
//
// Three layers, three test groups:
//
//   * Lockdep drives the always-compiled lock-order graph directly
//     (fabricated sites and addresses): a 2-cycle and a 3-cycle report
//     full witness chains, try_lock acquisitions are exempt from edge
//     recording, and the engine's stripe fan-out pattern (one site
//     locking many stripe mutexes, never nested) stays clean.  Under
//     STRT_LOCKDEP=1 the same inversions are caught through real
//     strt::Mutex acquisitions.
//
//   * Hb drives HbChecker with synthetic event streams: unordered
//     write/write and write/read pairs are flagged; mutex hand-off,
//     release/acquire atomics, thread create and join edges order them.
//
//   * Explore (STRT_RACE=1 builds only; skipped elsewhere) pins the two
//     PR-7 service bug classes as deterministic regressions.  The
//     shipped Service survives bounded-exhaustive exploration; with the
//     pre-fix logic fault-injected back in ("svc.pop_before_claim" /
//     "svc.empty_before_admits"), the explorer finds the losing
//     schedule within a 2-preemption budget and prints a witness.
#include <gtest/gtest.h>

#include <chrono>
#include <future>
#include <optional>
#include <source_location>
#include <string>
#include <thread>
#include <vector>

#include "base/mutex.hpp"
#include "exec/exec.hpp"
#include "model/generator.hpp"
#include "race/hook.hpp"
#include "race/lockdep.hpp"
#include "race/schedule.hpp"
#include "race/vector_clock.hpp"
#include "svc/api.hpp"
#include "svc/service.hpp"

namespace strt {
namespace {

// =================================================================
// Lockdep: the always-compiled lock-order graph, driven directly.

race::SiteId site(const char* label) {
  return race::lockdep_site(std::source_location::current(), label);
}

TEST(Lockdep, CycleOfTwoReportsWitness) {
  race::lockdep_reset();
  const race::LockId a = race::lockdep_register();
  const race::LockId b = race::lockdep_register();
  const race::SiteId sa = site("lockdep.test.A");
  const race::SiteId sb = site("lockdep.test.B");

  // This thread's order: A then B.
  race::lockdep_acquire(a, sa);
  race::lockdep_acquire(b, sb);
  race::lockdep_release(b);
  race::lockdep_release(a);
  EXPECT_EQ(race::lockdep_stats().cycles, 0u);

  // A second thread inverts the order: B then A closes the cycle.
  std::thread t([&] {
    race::lockdep_acquire(b, sb);
    race::lockdep_acquire(a, sa);
    race::lockdep_release(a);
    race::lockdep_release(b);
  });
  t.join();

  const std::vector<race::LockCycle> cycles = race::lockdep_cycles();
  ASSERT_EQ(cycles.size(), 1u);
  EXPECT_EQ(race::lockdep_stats().cycles, 1u);
  // Full witness chain: both sites, closed (first == last).
  ASSERT_GE(cycles[0].chain_names.size(), 3u);
  EXPECT_EQ(cycles[0].chain_names.front(), cycles[0].chain_names.back());
  EXPECT_NE(cycles[0].message.find("error[race.lock-cycle]"),
            std::string::npos);
  EXPECT_NE(cycles[0].message.find("lockdep.test.A"), std::string::npos);
  EXPECT_NE(cycles[0].message.find("lockdep.test.B"), std::string::npos);
  EXPECT_NE(race::lockdep_report().find("1 cycle(s)"), std::string::npos);
}

TEST(Lockdep, CycleOfThreeWitnessNamesEveryEdge) {
  race::lockdep_reset();
  const race::LockId a = race::lockdep_register();
  const race::LockId b = race::lockdep_register();
  const race::LockId c = race::lockdep_register();
  const race::SiteId sa = site("lockdep.tri.A");
  const race::SiteId sb = site("lockdep.tri.B");
  const race::SiteId sc = site("lockdep.tri.C");

  const auto nested = [](race::LockId first, race::SiteId sfirst,
                         race::LockId second, race::SiteId ssecond) {
    race::lockdep_acquire(first, sfirst);
    race::lockdep_acquire(second, ssecond);
    race::lockdep_release(second);
    race::lockdep_release(first);
  };
  nested(a, sa, b, sb);  // A -> B
  nested(b, sb, c, sc);  // B -> C
  EXPECT_EQ(race::lockdep_stats().cycles, 0u);
  nested(c, sc, a, sa);  // C -> A closes A -> B -> C -> A

  const std::vector<race::LockCycle> cycles = race::lockdep_cycles();
  ASSERT_EQ(cycles.size(), 1u);
  EXPECT_NE(cycles[0].message.find("(3 sites)"), std::string::npos);
  for (const char* name : {"lockdep.tri.A", "lockdep.tri.B",
                           "lockdep.tri.C"}) {
    EXPECT_NE(cycles[0].message.find(name), std::string::npos) << name;
  }
}

TEST(Lockdep, TryLockIsExemptFromEdges) {
  race::lockdep_reset();
  const race::LockId a = race::lockdep_register();
  const race::LockId b = race::lockdep_register();
  const race::SiteId sa = site("lockdep.try.A");
  const race::SiteId sb = site("lockdep.try.B");

  // A held while B is try-acquired: no A -> B edge (a try_lock cannot
  // block, so it cannot be the waiting half of a deadlock)...
  race::lockdep_acquire(a, sa);
  race::lockdep_try_acquire(b, sb);
  race::lockdep_release(b);
  race::lockdep_release(a);
  EXPECT_EQ(race::lockdep_stats().edges, 0u);

  // ...so the inverted blocking order B -> A stays acyclic.
  race::lockdep_acquire(b, sb);
  race::lockdep_acquire(a, sa);
  race::lockdep_release(a);
  race::lockdep_release(b);
  EXPECT_EQ(race::lockdep_stats().edges, 1u);
  EXPECT_EQ(race::lockdep_stats().cycles, 0u);
}

TEST(Lockdep, StripeFanOutIsNotAFalsePositive) {
  race::lockdep_reset();
  // The workspace memo pattern: one call site locks whichever of its 16
  // stripe mutexes the key hashes to, one at a time, never nested.
  race::LockId stripes[16];
  for (race::LockId& m : stripes) m = race::lockdep_register();
  const race::SiteId s = site("lockdep.stripe.memo");
  for (int round = 0; round < 3; ++round) {
    for (const race::LockId m : stripes) {
      race::lockdep_acquire(m, s);
      race::lockdep_release(m);
    }
  }
  // Non-nested acquisitions record no edges at all.
  EXPECT_EQ(race::lockdep_stats().edges, 0u);
  EXPECT_EQ(race::lockdep_stats().cycles, 0u);
  EXPECT_EQ(race::lockdep_stats().acquisitions, 48u);
}

TEST(Lockdep, SameSiteNestingIsAnImmediateSelfCycle) {
  race::lockdep_reset();
  const race::LockId m1 = race::lockdep_register();
  const race::LockId m2 = race::lockdep_register();
  const race::SiteId s = site("lockdep.nest.self");
  // Two instances nested under ONE site: any second thread doing the
  // same in the opposite instance order deadlocks, so the same-site
  // cycle is reported without needing to see that thread.
  race::lockdep_acquire(m1, s);
  race::lockdep_acquire(m2, s);
  race::lockdep_release(m2);
  race::lockdep_release(m1);
  EXPECT_EQ(race::lockdep_stats().cycles, 1u);
}

TEST(Lockdep, ResetClearsFindings) {
  race::lockdep_reset();
  const race::LockId a = race::lockdep_register();
  const race::SiteId s = site("lockdep.reset.site");
  race::lockdep_acquire(a, s);
  race::lockdep_acquire(a, s);  // relock of the held instance
  race::lockdep_release(a);
  race::lockdep_release(a);
  EXPECT_EQ(race::lockdep_stats().cycles, 1u);
  race::lockdep_reset();
  EXPECT_EQ(race::lockdep_stats().cycles, 0u);
  EXPECT_EQ(race::lockdep_stats().edges, 0u);
  EXPECT_TRUE(race::lockdep_cycles().empty());
}

#if STRT_LOCKDEP
// The instrumented path end to end: real strt::Mutex acquisitions in an
// intentionally inverted pair, sites captured from these very lines.
TEST(Lockdep, RealMutexInversionIsCaught) {
  race::lockdep_reset();
  Mutex a;
  Mutex b;
  {
    const MutexLock la(a);
    const MutexLock lb(b);
  }
  std::thread t([&] {
    const MutexLock lb(b);
    const MutexLock la(a);
  });
  t.join();
  const std::vector<race::LockCycle> cycles = race::lockdep_cycles();
  ASSERT_GE(cycles.size(), 1u);
  EXPECT_NE(cycles[0].message.find("test_race.cpp"), std::string::npos);
  race::lockdep_reset();
}
#endif  // STRT_LOCKDEP

// =================================================================
// HbChecker: synthetic event streams, every build flavor.

TEST(Hb, UnorderedWritesAreFlagged) {
  race::HbChecker hb;
  hb.thread_start(0, -1);
  hb.thread_start(1, 0);
  int x = 0;
  hb.plain_access(0, &x, true, "hb.t0.write");
  hb.plain_access(1, &x, true, "hb.t1.write");
  ASSERT_EQ(hb.races().size(), 1u);
  EXPECT_TRUE(hb.races()[0].write_write);
  EXPECT_EQ(hb.races()[0].first_site, "hb.t0.write");
  EXPECT_EQ(hb.races()[0].second_site, "hb.t1.write");
  EXPECT_FALSE(hb.ordered_so_far(&x));
}

TEST(Hb, UnorderedWriteReadIsFlagged) {
  race::HbChecker hb;
  hb.thread_start(0, -1);
  hb.thread_start(1, 0);
  int x = 0;
  hb.plain_access(0, &x, true, "hb.w");
  hb.plain_access(1, &x, false, "hb.r");
  ASSERT_EQ(hb.races().size(), 1u);
  EXPECT_FALSE(hb.races()[0].write_write);
}

TEST(Hb, MutexHandOffOrders) {
  race::HbChecker hb;
  hb.thread_start(0, -1);
  hb.thread_start(1, 0);
  int mu = 0;
  int x = 0;
  hb.mutex_acquire(0, &mu);
  hb.plain_access(0, &x, true, "hb.guarded.w0");
  hb.mutex_release(0, &mu);
  hb.mutex_acquire(1, &mu);
  hb.plain_access(1, &x, true, "hb.guarded.w1");
  hb.mutex_release(1, &mu);
  EXPECT_TRUE(hb.races().empty());
  EXPECT_TRUE(hb.ordered_so_far(&x));
}

TEST(Hb, ReleaseAcquirePairOrders) {
  race::HbChecker hb;
  hb.thread_start(0, -1);
  hb.thread_start(1, 0);
  int flag = 0;
  int x = 0;
  hb.plain_access(0, &x, true, "hb.data.w");
  hb.atomic_access(0, &flag, race::Access::kStore, race::Order::kRelease,
                   "hb.flag.store");
  hb.atomic_access(1, &flag, race::Access::kLoad, race::Order::kAcquire,
                   "hb.flag.load");
  hb.plain_access(1, &x, false, "hb.data.r");
  EXPECT_TRUE(hb.races().empty()) << hb.races()[0].first_site << " / "
                                  << hb.races()[0].second_site;
}

TEST(Hb, RelaxedPairDoesNotOrder) {
  race::HbChecker hb;
  hb.thread_start(0, -1);
  hb.thread_start(1, 0);
  int flag = 0;
  int x = 0;
  hb.plain_access(0, &x, true, "hb.rlx.data.w");
  hb.atomic_access(0, &flag, race::Access::kStore, race::Order::kRelaxed,
                   "hb.rlx.flag.store");
  hb.atomic_access(1, &flag, race::Access::kLoad, race::Order::kRelaxed,
                   "hb.rlx.flag.load");
  hb.plain_access(1, &x, false, "hb.rlx.data.r");
  // Both the flag pair itself and the data pair it failed to publish.
  bool data_pair_flagged = false;
  for (const race::HbRace& r : hb.races()) {
    if (r.first_site == "hb.rlx.data.w" && r.second_site == "hb.rlx.data.r") {
      data_pair_flagged = true;
    }
  }
  EXPECT_TRUE(data_pair_flagged);
  EXPECT_FALSE(hb.ordered_so_far(&x));
}

TEST(Hb, CreateAndJoinEdgesOrder) {
  race::HbChecker hb;
  hb.thread_start(0, -1);
  int x = 0;
  hb.plain_access(0, &x, true, "hb.parent.before");
  hb.thread_start(1, 0);  // create happens-before the child's first step
  hb.plain_access(1, &x, true, "hb.child.write");
  hb.thread_finish(1);
  hb.thread_join(0, 1);  // finish happens-before the join's return
  hb.plain_access(0, &x, true, "hb.parent.after");
  EXPECT_TRUE(hb.races().empty());
  EXPECT_TRUE(hb.ordered_so_far(&x));
}

// =================================================================
// The interleaving explorer.  Real schedules only under STRT_RACE=1;
// elsewhere each test skips (the Explorer type still exists and runs
// bodies natively, which the skip message points out).

#if STRT_RACE

/// Arms a reverted-logic fault for one test.
struct FaultGuard {
  const char* name;
  explicit FaultGuard(const char* n) : name(n) { race::set_fault(n, true); }
  ~FaultGuard() { race::set_fault(name, false); }
};

TEST(Explore, FindsTheLostUpdateAndPrintsAWitness) {
  race::ExploreOptions opts;
  opts.max_preemptions = 1;
  opts.choice_sites = {"cnt."};
  race::Explorer ex(opts);
  int x = 0;
  ex.explore([&] {
    x = 0;
    std::thread t0([&] {
      STRT_RACE_THREAD("cnt", 0);
      STRT_RACE_HOOK("cnt.read0");
      const int seen = x;
      STRT_RACE_HOOK("cnt.write0");
      x = seen + 1;
    });
    STRT_RACE_AWAIT_THREAD("cnt", 0);
    std::thread t1([&] {
      STRT_RACE_THREAD("cnt", 1);
      STRT_RACE_HOOK("cnt.read1");
      const int seen = x;
      STRT_RACE_HOOK("cnt.write1");
      x = seen + 1;
    });
    STRT_RACE_AWAIT_THREAD("cnt", 1);
    race::join(t0);
    race::join(t1);
    if (x != 2) ex.violation("lost update: x == " + std::to_string(x));
  });
  ASSERT_TRUE(ex.found().has_value());
  EXPECT_NE(ex.found()->message.find("lost update"), std::string::npos);
  // The witness names the interleaving, thread by thread and site by
  // site, so the schedule can be read straight out of the failure.
  EXPECT_NE(ex.found()->witness.find("cnt/"), std::string::npos);
  EXPECT_NE(ex.found()->witness.find("preempt"), std::string::npos);
  EXPECT_GE(ex.schedules_run(), 2u);
  EXPECT_FALSE(ex.exhausted());
}

TEST(Explore, MutexMakesTheCounterAtomicUnderEverySchedule) {
  race::ExploreOptions opts;
  opts.max_preemptions = 2;
  opts.choice_sites = {"cnt."};
  race::Explorer ex(opts);
  int x = 0;
  Mutex mu;
  const auto locked_inc = [&] {
    const MutexLock l(mu);
    STRT_RACE_HOOK("cnt.read");
    const int seen = x;
    STRT_RACE_HOOK("cnt.write");
    x = seen + 1;
  };
  ex.explore([&] {
    x = 0;
    std::thread t0([&] {
      STRT_RACE_THREAD("cnt", 0);
      locked_inc();
    });
    STRT_RACE_AWAIT_THREAD("cnt", 0);
    std::thread t1([&] {
      STRT_RACE_THREAD("cnt", 1);
      locked_inc();
    });
    STRT_RACE_AWAIT_THREAD("cnt", 1);
    race::join(t0);
    race::join(t1);
    if (x != 2) ex.violation("lost update under mutex: x == " +
                             std::to_string(x));
  });
  EXPECT_FALSE(ex.found().has_value())
      << ex.found()->message << "\n" << ex.found()->witness;
  EXPECT_TRUE(ex.exhausted());
  EXPECT_GE(ex.schedules_run(), 2u);
}

TEST(Explore, RandomModeRunsTheRequestedScheduleCount) {
  race::ExploreOptions opts;
  opts.max_preemptions = 2;
  opts.choice_sites = {"cnt."};
  opts.random_schedules = 24;
  opts.seed = 0xfeedULL;
  race::Explorer ex(opts);
  int x = 0;
  Mutex mu;
  ex.explore([&] {
    x = 0;
    std::thread t0([&] {
      STRT_RACE_THREAD("cnt", 0);
      const MutexLock l(mu);
      STRT_RACE_HOOK("cnt.bump");
      ++x;
    });
    STRT_RACE_AWAIT_THREAD("cnt", 0);
    race::join(t0);
    if (x != 1) ex.violation("x == " + std::to_string(x));
  });
  EXPECT_FALSE(ex.found().has_value());
  EXPECT_EQ(ex.schedules_run(), 24u);
  EXPECT_FALSE(ex.exhausted());  // sampling never certifies the space
}

// ---------------------------------------------------------------
// The sharded service under the explorer.

std::vector<DrtTask> tiny_task_set(std::uint64_t seed) {
  Rng rng = Rng::split(seed, 0);
  DrtGenParams params;
  params.min_vertices = 2;
  params.max_vertices = 3;
  params.min_separation = Time(6);
  params.max_separation = Time(24);
  auto gen = random_drt_set(rng, 1, 0.3, params);
  std::vector<DrtTask> tasks;
  for (auto& g : gen) tasks.push_back(std::move(g.task));
  return tasks;
}

/// A structural request whose deadline has already expired on dispatch:
/// the full admission/queue/promise path runs, the engine does not, so
/// explored bodies stay fast and deterministic.
svc::AnalysisRequest tiny_request(std::uint64_t id, std::uint64_t seed) {
  svc::AnalysisRequest req;
  req.id = id;
  req.kind = svc::AnalysisKind::kStructural;
  req.supply = Supply::dedicated(1);
  req.tasks = tiny_task_set(seed);
  req.deadline = std::chrono::milliseconds(0);
  return req;
}

svc::ServiceOptions shard_opts(std::size_t shards) {
  svc::ServiceOptions o;
  o.shards = shards;
  o.queue_capacity = 2 * shards;  // per-shard ring capacity 2
  o.max_batch = 1;
  o.parallel_batches = false;
  return o;
}

/// One uncontrolled Service lifecycle before explore(): function-local
/// statics (obs registry cells, the api.cpp outcome counters) initialize
/// outside the controlled schedule, keeping explored executions
/// identical under replay.
void warm_service_statics(const svc::ServiceOptions& sopts,
                          const svc::AnalysisRequest& req) {
  exec::set_thread_count(1);
  svc::Service svc(sopts);
  svc::AnalysisRequest r = req;
  std::future<svc::AnalysisOutcome> fut = svc.submit(std::move(r));
  svc.drain();
  fut.get();
}

/// The ring's publication contract must hold in every explored
/// schedule: a cell's release-store of seq is what hands the element
/// over, so that pair may never appear in the race report (the relaxed
/// cursor pairs are expected and excluded by site).
void expect_ring_publication_ordered(const race::Explorer& ex) {
  for (const race::HbRace& r : ex.races()) {
    EXPECT_FALSE(r.first_site == "svc.ring.push_publish" &&
                 r.second_site == "svc.ring.pop_seq_check")
        << "ring publication pair unordered";
    // Every tolerated unordered pair is a read polling a value some
    // unordered write then changes (relaxed size() reads, the
    // admit-vs-stop window).  Unordered write/write would mean a lost
    // publication and is never acceptable.
    EXPECT_FALSE(r.write_write)
        << r.first_site << " / " << r.second_site << " unordered writes";
  }
}

TEST(ExploreSvc, DrainNeverReturnsEarlyOnShippedLogic) {
  const svc::ServiceOptions sopts = shard_opts(1);
  const svc::AnalysisRequest base = tiny_request(1, 7);
  warm_service_statics(sopts, base);

  race::ExploreOptions opts;
  opts.max_preemptions = 2;
  opts.choice_sites = {"svc.drain.probe", "svc.worker.claim",
                       "svc.worker.idle_probe"};
  race::Explorer ex(opts);
  ex.explore([&] {
    svc::Service svc(sopts);
    svc::AnalysisRequest req = base;
    std::future<svc::AnalysisOutcome> fut = svc.submit(std::move(req));
    svc.drain();
    if (fut.wait_for(std::chrono::seconds(0)) !=
        std::future_status::ready) {
      ex.violation("drain() returned before the submitted request "
                   "resolved");
    }
  });
  EXPECT_FALSE(ex.found().has_value())
      << ex.found()->message << "\n" << ex.found()->witness;
  EXPECT_TRUE(ex.exhausted());
  EXPECT_GE(ex.schedules_run(), 2u);
  expect_ring_publication_ordered(ex);
}

TEST(ExploreSvc, DrainGapFaultReproducesThePreFixBug) {
  const svc::ServiceOptions sopts = shard_opts(1);
  const svc::AnalysisRequest base = tiny_request(1, 7);
  warm_service_statics(sopts, base);

  const FaultGuard fault("svc.pop_before_claim");
  race::ExploreOptions opts;
  opts.max_preemptions = 2;
  opts.choice_sites = {"svc.drain.probe", "svc.worker.claim",
                       "svc.worker.idle_probe"};
  race::Explorer ex(opts);
  ex.explore([&] {
    svc::Service svc(sopts);
    svc::AnalysisRequest req = base;
    std::future<svc::AnalysisOutcome> fut = svc.submit(std::move(req));
    svc.drain();
    if (fut.wait_for(std::chrono::seconds(0)) !=
        std::future_status::ready) {
      ex.violation("drain() returned before the submitted request "
                   "resolved");
    }
  });
  ASSERT_TRUE(ex.found().has_value())
      << "the pop-before-claim fault must lose a schedule";
  EXPECT_NE(ex.found()->message.find("drain()"), std::string::npos);
  // The witness pins the losing interleaving: the worker parked inside
  // its pop-to-claim window while drain() probed idle().
  EXPECT_NE(ex.found()->witness.find("svc.worker.claim_gap"),
            std::string::npos)
      << ex.found()->witness;
  EXPECT_NE(ex.found()->witness.find("svc.drain.probe"), std::string::npos);
}

TEST(ExploreSvc, ShutdownNeverStrandsAPromiseOnShippedLogic) {
  const svc::ServiceOptions sopts = shard_opts(1);
  const svc::AnalysisRequest base = tiny_request(1, 7);
  warm_service_statics(sopts, base);

  race::ExploreOptions opts;
  opts.max_preemptions = 2;
  opts.choice_sites = {"svc.ring.push_cursor", "svc.worker.exit."};
  race::Explorer ex(opts);
  ex.explore([&] {
    auto svc = std::make_unique<svc::Service>(sopts);
    // Handshake: the producer announces itself *before* touching the
    // service, and the destructor only starts after that announcement.
    // Between the announcement and the admission's active_admits
    // increment there is no choice site, so in every explored schedule
    // the producer is inside a registered admission before the workers
    // may exit -- which is exactly the lifetime contract submit() has.
    Mutex hm;
    CondVar hcv;
    bool entered = false;
    std::optional<std::future<svc::AnalysisOutcome>> fut;
    std::thread producer([&] {
      STRT_RACE_THREAD("producer", 0);
      {
        const MutexLock l(hm);
        entered = true;
      }
      hcv.notify_all();
      svc::AnalysisRequest req = base;
      fut = svc->submit(std::move(req));
    });
    STRT_RACE_AWAIT_THREAD("producer", 0);
    {
      MutexLock l(hm);
      while (!entered) l.wait(hcv);
    }
    svc.reset();  // ~Service: stop, wake everyone, join the workers
    race::join(producer);
    if (!fut.has_value()) {
      ex.violation("producer returned without a future");
      return;
    }
    try {
      fut->get();
    } catch (const std::future_error&) {
      ex.violation("stranded promise: a worker exited past a pending "
                   "admission");
    }
  });
  EXPECT_FALSE(ex.found().has_value())
      << ex.found()->message << "\n" << ex.found()->witness;
  EXPECT_TRUE(ex.exhausted());
  EXPECT_GE(ex.schedules_run(), 2u);
  expect_ring_publication_ordered(ex);
}

TEST(ExploreSvc, ShutdownFaultStrandsThePromise) {
  const svc::ServiceOptions sopts = shard_opts(1);
  const svc::AnalysisRequest base = tiny_request(1, 7);
  warm_service_statics(sopts, base);

  const FaultGuard fault("svc.empty_before_admits");
  race::ExploreOptions opts;
  opts.max_preemptions = 2;
  opts.choice_sites = {"svc.ring.push_cursor", "svc.worker.exit."};
  race::Explorer ex(opts);
  ex.explore([&] {
    auto svc = std::make_unique<svc::Service>(sopts);
    Mutex hm;
    CondVar hcv;
    bool entered = false;
    std::optional<std::future<svc::AnalysisOutcome>> fut;
    std::thread producer([&] {
      STRT_RACE_THREAD("producer", 0);
      {
        const MutexLock l(hm);
        entered = true;
      }
      hcv.notify_all();
      svc::AnalysisRequest req = base;
      fut = svc->submit(std::move(req));
    });
    STRT_RACE_AWAIT_THREAD("producer", 0);
    {
      MutexLock l(hm);
      while (!entered) l.wait(hcv);
    }
    svc.reset();
    race::join(producer);
    if (!fut.has_value()) {
      ex.violation("producer returned without a future");
      return;
    }
    try {
      fut->get();
    } catch (const std::future_error&) {
      ex.violation("stranded promise: a worker exited past a pending "
                   "admission");
    }
  });
  ASSERT_TRUE(ex.found().has_value())
      << "the empty-before-admits fault must strand a schedule";
  EXPECT_NE(ex.found()->message.find("stranded promise"),
            std::string::npos);
  // The witness shows the worker sampling emptiness, the push landing,
  // and the worker reading a zero admissions count -- the exact window
  // the shipped load order closes.
  EXPECT_NE(ex.found()->witness.find("svc.worker.exit.admits_second"),
            std::string::npos)
      << ex.found()->witness;
}

TEST(ExploreSvc, TwoShardsTwoProducersDrainAndShutdownClean) {
  const svc::ServiceOptions sopts = shard_opts(2);
  const svc::AnalysisRequest req0 = tiny_request(1, 7);
  const svc::AnalysisRequest req1 = tiny_request(2, 11);
  warm_service_statics(sopts, req0);

  race::ExploreOptions opts;
  opts.max_preemptions = 2;
  opts.choice_sites = {"svc.drain.probe", "svc.worker.claim",
                       "svc.admit.enter"};
  race::Explorer ex(opts);
  ex.explore([&] {
    svc::Service svc(sopts);
    std::optional<std::future<svc::AnalysisOutcome>> f0;
    std::optional<std::future<svc::AnalysisOutcome>> f1;
    std::thread p0([&] {
      STRT_RACE_THREAD("producer", 0);
      svc::AnalysisRequest r = req0;
      f0 = svc.submit(std::move(r));
    });
    STRT_RACE_AWAIT_THREAD("producer", 0);
    std::thread p1([&] {
      STRT_RACE_THREAD("producer", 1);
      svc::AnalysisRequest r = req1;
      f1 = svc.submit(std::move(r));
    });
    STRT_RACE_AWAIT_THREAD("producer", 1);
    race::join(p0);
    race::join(p1);
    svc.drain();
    if (f0->wait_for(std::chrono::seconds(0)) !=
            std::future_status::ready ||
        f1->wait_for(std::chrono::seconds(0)) !=
            std::future_status::ready) {
      ex.violation("drain() returned with an unresolved request");
    }
  });
  EXPECT_FALSE(ex.found().has_value())
      << ex.found()->message << "\n" << ex.found()->witness;
  EXPECT_TRUE(ex.exhausted());
  EXPECT_GE(ex.schedules_run(), 2u);
  expect_ring_publication_ordered(ex);
}

#else  // !STRT_RACE

TEST(Explore, RequiresRaceBuild) {
  GTEST_SKIP() << "interleaving explorer hooks are compiled out; "
                  "configure with -DSTRT_RACE=ON";
}

#endif  // STRT_RACE

}  // namespace
}  // namespace strt
