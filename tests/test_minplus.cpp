#include <gtest/gtest.h>

#include "curves/builders.hpp"
#include "curves/minplus.hpp"
#include "testutil.hpp"

namespace strt {
namespace {

using test::dense;
using test::dense_conv;
using test::dense_deconv;
using test::dense_hdev;
using test::dense_vdev;
using test::random_staircase;

TEST(Pointwise, AddMinMax) {
  const Staircase f = Staircase::from_points(
      {Step{Time(2), Work(3)}, Step{Time(6), Work(5)}}, Time(10));
  const Staircase g = Staircase::from_points(
      {Step{Time(1), Work(1)}, Step{Time(7), Work(9)}}, Time(8));
  const Staircase sum = pointwise_add(f, g);
  const Staircase mn = pointwise_min(f, g);
  const Staircase mx = pointwise_max(f, g);
  EXPECT_EQ(sum.horizon(), Time(8));
  for (std::int64_t t = 0; t <= 8; ++t) {
    const Work fv = f.value(Time(t));
    const Work gv = g.value(Time(t));
    EXPECT_EQ(sum.value(Time(t)), fv + gv) << t;
    EXPECT_EQ(mn.value(Time(t)), min(fv, gv)) << t;
    EXPECT_EQ(mx.value(Time(t)), max(fv, gv)) << t;
  }
}

TEST(MinplusConv, MatchesBruteForceOnRandomCurves) {
  Rng rng(2024);
  for (int trial = 0; trial < 30; ++trial) {
    const Staircase f = random_staircase(rng, Time(25));
    const Staircase g = random_staircase(rng, Time(20));
    const Staircase h = minplus_conv(f, g);
    ASSERT_EQ(h.horizon(), Time(45));
    const auto expect = dense_conv(dense(f, Time(25)), dense(g, Time(20)));
    const auto got = dense(h, Time(45));
    EXPECT_EQ(got, expect) << "trial " << trial;
  }
}

TEST(MinplusConv, ZeroCurveActsAsFloor) {
  // Convolving with the zero curve on [0, Hz] gives 0 wherever the zero
  // curve can cover the whole window (t <= Hz) and the domain-restricted
  // minimum min_{s >= t - Hz} f(s) = f(t - Hz) beyond it.
  const Staircase f = Staircase::from_points(
      {Step{Time(1), Work(4)}, Step{Time(5), Work(9)}}, Time(10));
  const Staircase z(Time(10));
  const Staircase h = minplus_conv(f, z);
  for (std::int64_t t = 0; t <= 20; ++t) {
    const Work expect =
        t <= 10 ? Work(0) : f.value(Time(t - 10));
    EXPECT_EQ(h.value(Time(t)), expect) << "t=" << t;
  }
}

TEST(MinplusConv, Commutative) {
  Rng rng(7);
  const Staircase f = random_staircase(rng, Time(30));
  const Staircase g = random_staircase(rng, Time(30));
  EXPECT_EQ(minplus_conv(f, g), minplus_conv(g, f));
}

TEST(MinplusConv, Associative) {
  Rng rng(8);
  const Staircase f = random_staircase(rng, Time(12));
  const Staircase g = random_staircase(rng, Time(12));
  const Staircase h = random_staircase(rng, Time(12));
  EXPECT_EQ(minplus_conv(minplus_conv(f, g), h),
            minplus_conv(f, minplus_conv(g, h)));
}

TEST(MinplusDeconv, MatchesBruteForceOnRandomCurves) {
  Rng rng(515);
  for (int trial = 0; trial < 30; ++trial) {
    const Staircase f = random_staircase(rng, Time(40));
    const Staircase g = random_staircase(rng, Time(15));
    const Staircase h = minplus_deconv(f, g);
    ASSERT_EQ(h.horizon(), Time(25));
    const auto expect = dense_deconv(dense(f, Time(40)), dense(g, Time(15)));
    const auto got = dense(h, Time(25));
    for (std::size_t t = 0; t < expect.size(); ++t) {
      EXPECT_EQ(got[t], std::max<std::int64_t>(0, expect[t]))
          << "trial " << trial << " t=" << t;
    }
  }
}

TEST(MinplusDeconv, RequiresLongerFirstOperand) {
  const Staircase f(Time(5));
  const Staircase g(Time(9));
  EXPECT_THROW((void)minplus_deconv(f, g), std::invalid_argument);
}

TEST(Deviations, HdevMatchesBruteForce) {
  Rng rng(31);
  for (int trial = 0; trial < 40; ++trial) {
    const Staircase a = random_staircase(rng, Time(30), 4, 0.35);
    // Service comfortably dominating eventually: rate 2 staircase.
    const Staircase b = curve::dedicated(2, Time(200));
    const Time d = hdev(a, b);
    const std::int64_t expect = dense_hdev(dense(a, Time(30)),
                                           dense(b, Time(200)));
    ASSERT_GE(expect, 0);
    EXPECT_EQ(d.count(), expect) << "trial " << trial;
  }
}

TEST(Deviations, HdevUnboundedWhenServiceFlat) {
  const Staircase a =
      Staircase::from_points({Step{Time(1), Work(5)}}, Time(10));
  const Staircase b =
      Staircase::from_points({Step{Time(1), Work(2)}}, Time(10))
          .with_tail(Tail{Time(5), Work(0)});
  EXPECT_TRUE(hdev(a, b).is_unbounded());
}

TEST(Deviations, VdevMatchesBruteForce) {
  Rng rng(32);
  for (int trial = 0; trial < 40; ++trial) {
    const Staircase a = random_staircase(rng, Time(30), 4, 0.4);
    const Staircase b = random_staircase(rng, Time(30), 3, 0.5);
    const Work v = vdev(a, b, Time(29));
    const std::int64_t expect =
        dense_vdev(dense(a, Time(30)), dense(b, Time(30)), 29);
    EXPECT_EQ(v.count(), std::max<std::int64_t>(0, expect))
        << "trial " << trial;
  }
}

TEST(FirstCatchUp, FindsTheFirstCrossing) {
  // Workload jumps to 5 immediately; unit-rate service catches up at 5.
  const Staircase a =
      Staircase::from_points({Step{Time(1), Work(5)}}, Time(20));
  const Staircase b = curve::dedicated(1, Time(20));
  ASSERT_TRUE(first_catch_up(a, b).has_value());
  EXPECT_EQ(*first_catch_up(a, b), Time(5));
}

TEST(FirstCatchUp, NoneWithinHorizon) {
  const Staircase a =
      Staircase::from_points({Step{Time(1), Work(100)}}, Time(20));
  const Staircase b = curve::dedicated(1, Time(20));
  EXPECT_FALSE(first_catch_up(a, b).has_value());
}

TEST(FirstCatchUp, BruteForceAgreement) {
  Rng rng(88);
  for (int trial = 0; trial < 40; ++trial) {
    const Staircase a = random_staircase(rng, Time(40), 3, 0.3);
    const Staircase b = curve::dedicated(1, Time(40));
    const auto got = first_catch_up(a, b);
    std::optional<Time> expect;
    for (std::int64_t t = 1; t <= 40; ++t) {
      if (a.value(Time(t)) <= b.value(Time(t))) {
        expect = Time(t);
        break;
      }
    }
    EXPECT_EQ(got, expect) << "trial " << trial;
  }
}

TEST(Leftover, MatchesDefinition) {
  Rng rng(41);
  for (int trial = 0; trial < 30; ++trial) {
    const Staircase beta = curve::dedicated(1, Time(50));
    const Staircase alpha = random_staircase(rng, Time(50), 2, 0.25);
    const Staircase left = leftover_service(beta, alpha);
    std::int64_t best = 0;
    for (std::int64_t t = 0; t <= 50; ++t) {
      best = std::max(best, beta.value(Time(t)).count() -
                                alpha.value(Time(t)).count());
      EXPECT_EQ(left.value(Time(t)).count(), std::max<std::int64_t>(0, best))
          << "trial " << trial << " t=" << t;
    }
  }
}

TEST(Leftover, ZeroWhenWorkloadDominatesSupply) {
  const Staircase beta = curve::dedicated(1, Time(20));
  const Staircase alpha =
      Staircase::from_points({Step{Time(1), Work(100)}}, Time(20));
  const Staircase left = leftover_service(beta, alpha);
  for (std::int64_t t = 0; t <= 20; ++t) {
    // beta(0)-alpha(0) = 0 is the only non-negative point.
    EXPECT_EQ(left.value(Time(t)), Work(0)) << t;
  }
}

TEST(SubadditiveClosure, ProducesSubadditiveLowerCurve) {
  Rng rng(55);
  for (int trial = 0; trial < 15; ++trial) {
    const Staircase f = random_staircase(rng, Time(30), 5, 0.3);
    const Staircase c = subadditive_closure(f);
    EXPECT_TRUE(c.is_subadditive()) << "trial " << trial;
    for (std::int64_t t = 0; t <= 30; ++t) {
      EXPECT_LE(c.value(Time(t)), f.value(Time(t)));
    }
  }
}

TEST(SubadditiveClosure, FixpointOfSubadditiveCurve) {
  const Staircase sub = Staircase::from_points(
      {Step{Time(1), Work(2)}, Step{Time(6), Work(4)},
       Step{Time(11), Work(6)}},
      Time(15));
  ASSERT_TRUE(sub.is_subadditive());
  EXPECT_EQ(subadditive_closure(sub), sub.without_tail());
}

}  // namespace
}  // namespace strt
