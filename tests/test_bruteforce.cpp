// Independent brute-force cross-checks of the intricate algorithms, on
// randomly generated small instances.

#include <gtest/gtest.h>

#include <functional>

#include "curves/builders.hpp"
#include "curves/hull.hpp"
#include "graph/workload.hpp"
#include "io/parse.hpp"
#include "model/generator.hpp"
#include "sim/trace.hpp"
#include "testutil.hpp"

namespace strt {
namespace {

/// Brute-force dbf: enumerate every minimum-separation path with span
/// <= t and sum the wcets of jobs whose absolute deadline fits.
/// (Minimum separations are worst-case for dbf: delaying a release can
/// only push deadlines past t or leave the qualifying set unchanged.)
Work brute_dbf(const DrtTask& task, Time t) {
  Work best(0);
  std::function<void(VertexId, Time, Work)> dfs = [&](VertexId v, Time el,
                                                      Work demand) {
    if (el + task.vertex(v).deadline <= t) {
      demand += task.vertex(v).wcet;
      best = max(best, demand);
    }
    for (std::int32_t ei : task.out_edges(v)) {
      const DrtEdge& e = task.edges()[static_cast<std::size_t>(ei)];
      const Time next = el + e.separation;
      if (next >= t) continue;  // no later job can meet a deadline <= t
      dfs(e.to, next, demand);
    }
  };
  for (VertexId v = 0; static_cast<std::size_t>(v) < task.vertex_count();
       ++v) {
    dfs(v, Time(0), Work(0));
  }
  return best;
}

TEST(BruteForce, DbfPointOnRandomGeneralDeadlineTasks) {
  Rng rng(111);
  for (int trial = 0; trial < 12; ++trial) {
    DrtGenParams params;
    params.min_vertices = 2;
    params.max_vertices = 4;
    params.min_separation = Time(2);
    params.max_separation = Time(7);
    params.chord_probability = 0.3;
    params.target_utilization = 0.5;
    // General deadlines (not frame separated): stretch beyond separations.
    params.deadline_factor = 2.5;
    const DrtTask task = random_drt(rng, params).task;
    for (std::int64_t t = 0; t <= 25; ++t) {
      EXPECT_EQ(dbf_point(task, Time(t)), brute_dbf(task, Time(t)))
          << "trial " << trial << " t=" << t;
    }
  }
}

TEST(BruteForce, DbfPointOnHandGeneralCase) {
  // Middle job with a huge deadline (the pair-formulation counterexample).
  DrtBuilder b("gen");
  const VertexId v1 = b.add_vertex("v1", Work(5), Time(2));
  const VertexId v2 = b.add_vertex("v2", Work(4), Time(1000));
  const VertexId v3 = b.add_vertex("v3", Work(6), Time(2));
  b.add_edge(v1, v2, Time(3)).add_edge(v2, v3, Time(3));
  b.add_edge(v3, v1, Time(3));
  const DrtTask task = std::move(b).build();
  for (std::int64_t t = 0; t <= 40; ++t) {
    EXPECT_EQ(dbf_point(task, Time(t)), brute_dbf(task, Time(t))) << t;
  }
}

/// Brute-force concave majorant at integer t: the hull of a point set is
/// the max over all chords between breakpoints spanning t.
std::int64_t brute_hull_at(const Staircase& f, std::int64_t t) {
  std::vector<std::pair<std::int64_t, std::int64_t>> pts;
  for (const Step& s : f.steps()) pts.emplace_back(s.time.count(), s.value.count());
  pts.emplace_back(f.horizon().count(), f.value_at_horizon().count());
  std::int64_t best = 0;
  for (const auto& [ta, va] : pts) {
    for (const auto& [tb, vb] : pts) {
      if (ta > t || tb < t || ta == tb) continue;
      // floor of the chord interpolation at t.
      const std::int64_t num = va * (tb - ta) + (vb - va) * (t - ta);
      best = std::max(best, num / (tb - ta) -
                                ((num % (tb - ta) != 0 && num < 0) ? 1 : 0));
    }
    if (ta == t) best = std::max(best, va);
  }
  return best;
}

TEST(BruteForce, ConcaveHullMatchesChordEnvelope) {
  Rng rng(222);
  for (int trial = 0; trial < 15; ++trial) {
    const Staircase f = test::random_staircase(rng, Time(30), 5, 0.3);
    const Staircase h = concave_hull_staircase(f);
    for (std::int64_t t = 0; t <= 30; ++t) {
      EXPECT_EQ(h.value(Time(t)).count(), brute_hull_at(f, t))
          << "trial " << trial << " t=" << t;
    }
  }
}

TEST(BruteForce, ParserRoundTripsRandomTasks) {
  Rng rng(333);
  for (int trial = 0; trial < 25; ++trial) {
    DrtGenParams params;
    params.min_vertices = 2;
    params.max_vertices = 9;
    params.chord_probability = 0.25;
    params.target_utilization = 0.4;
    const DrtTask task = random_drt(rng, params).task;
    const DrtTask parsed = parse_task(serialize_task(task));
    ASSERT_EQ(parsed.vertex_count(), task.vertex_count()) << trial;
    ASSERT_EQ(parsed.edge_count(), task.edge_count()) << trial;
    for (VertexId v = 0; static_cast<std::size_t>(v) < task.vertex_count();
         ++v) {
      EXPECT_EQ(parsed.vertex(v).wcet, task.vertex(v).wcet);
      EXPECT_EQ(parsed.vertex(v).deadline, task.vertex(v).deadline);
    }
    for (std::size_t i = 0; i < task.edge_count(); ++i) {
      EXPECT_EQ(parsed.edges()[i].from, task.edges()[i].from);
      EXPECT_EQ(parsed.edges()[i].to, task.edges()[i].to);
      EXPECT_EQ(parsed.edges()[i].separation, task.edges()[i].separation);
    }
    // And the analyses agree on the round-tripped task.
    EXPECT_EQ(rbf(task, Time(60)), rbf(parsed, Time(60))) << trial;
  }
}

TEST(BruteForce, RbfDominatesEveryConcreteTraceWindow) {
  // The request bound must majorize the empirical arrival curve of any
  // legal trace (including stretched ones).
  Rng rng(444);
  for (int trial = 0; trial < 10; ++trial) {
    DrtGenParams params;
    params.target_utilization = 0.4;
    const DrtTask task = random_drt(rng, params).task;
    const Time horizon(120);
    const Staircase bound = rbf(task, horizon);
    for (int run = 0; run < 5; ++run) {
      const Trace trace =
          trace_random_walk(task, rng, Time(100), 0.5, Time(15));
      std::vector<curve::TraceJob> jobs;
      for (const SimJob& j : trace) {
        jobs.push_back(curve::TraceJob{j.release, j.wcet});
      }
      const Staircase empirical = curve::arrival_of_trace(jobs, horizon);
      for (std::int64_t t = 0; t <= horizon.count(); ++t) {
        EXPECT_LE(empirical.value(Time(t)), bound.value(Time(t)))
            << "trial " << trial << " run " << run << " t=" << t;
      }
    }
  }
}

}  // namespace
}  // namespace strt
