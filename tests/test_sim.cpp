#include <gtest/gtest.h>

#include "curves/builders.hpp"
#include "sim/fifo.hpp"
#include "sim/oracle.hpp"
#include "sim/service.hpp"
#include "sim/trace.hpp"
#include "testutil.hpp"

namespace strt {
namespace {

TEST(Fifo, SingleJobOnUnitService) {
  const Trace trace{SimJob{Time(0), Work(3), 0}};
  const SimOutcome out = simulate_fifo(trace, pattern_constant(1, Time(10)));
  ASSERT_EQ(out.jobs.size(), 1u);
  EXPECT_EQ(out.jobs[0].finish, Time(3));
  EXPECT_EQ(out.jobs[0].delay, Time(3));
  EXPECT_EQ(out.max_backlog, Work(3));
  EXPECT_TRUE(out.all_completed);
}

TEST(Fifo, BackToBackJobsQueueUp) {
  const Trace trace{SimJob{Time(0), Work(2), 0}, SimJob{Time(1), Work(2), 1}};
  const SimOutcome out = simulate_fifo(trace, pattern_constant(1, Time(10)));
  ASSERT_EQ(out.jobs.size(), 2u);
  EXPECT_EQ(out.jobs[0].finish, Time(2));
  EXPECT_EQ(out.jobs[1].finish, Time(4));
  EXPECT_EQ(out.jobs[1].delay, Time(3));
  EXPECT_EQ(out.max_delay, Time(3));
  EXPECT_EQ(out.max_backlog, Work(3));  // at t=1: 1 left + 2 new
}

TEST(Fifo, IdleServiceIsWasted) {
  // Gap between jobs: the second job cannot use the idle capacity.
  const Trace trace{SimJob{Time(0), Work(1), 0}, SimJob{Time(5), Work(2), 1}};
  const SimOutcome out = simulate_fifo(trace, pattern_constant(1, Time(10)));
  ASSERT_EQ(out.jobs.size(), 2u);
  EXPECT_EQ(out.jobs[1].finish, Time(7));
  EXPECT_EQ(out.jobs[1].delay, Time(2));
}

TEST(Fifo, RespectsPatternGaps) {
  // Service only in ticks 4..6.
  ServicePattern p(Time(8).count(), 0);
  p[4] = p[5] = p[6] = 1;
  const Trace trace{SimJob{Time(0), Work(2), 0}};
  const SimOutcome out = simulate_fifo(trace, p);
  ASSERT_EQ(out.jobs.size(), 1u);
  EXPECT_EQ(out.jobs[0].finish, Time(6));
  EXPECT_EQ(out.jobs[0].delay, Time(6));
}

TEST(Fifo, IncompleteWhenPatternEnds) {
  const Trace trace{SimJob{Time(0), Work(5), 0}};
  const SimOutcome out = simulate_fifo(trace, pattern_constant(1, Time(3)));
  EXPECT_FALSE(out.all_completed);
  EXPECT_TRUE(out.jobs.empty());
}

TEST(Fifo, RejectsUnsortedTrace) {
  const Trace trace{SimJob{Time(5), Work(1), 0}, SimJob{Time(0), Work(1), 1}};
  EXPECT_THROW((void)simulate_fifo(trace, pattern_constant(1, Time(10))),
               std::invalid_argument);
}

TEST(Fifo, MultiUnitCapacityServesSeveralJobsPerTick) {
  const Trace trace{SimJob{Time(0), Work(1), 0}, SimJob{Time(0), Work(1), 1},
                    SimJob{Time(0), Work(1), 2}};
  const SimOutcome out = simulate_fifo(trace, pattern_constant(3, Time(4)));
  ASSERT_EQ(out.jobs.size(), 3u);
  for (const CompletedJob& j : out.jobs) EXPECT_EQ(j.finish, Time(1));
}

TEST(TraceGen, DenseWalkRespectsSeparationsAndWcets) {
  const DrtTask task = test::small_task();
  Rng rng(5);
  for (int trial = 0; trial < 20; ++trial) {
    const Trace t = trace_dense_walk(task, rng, Time(100));
    ASSERT_FALSE(t.empty());
    EXPECT_EQ(t.front().release, Time(0));
    for (std::size_t i = 0; i < t.size(); ++i) {
      EXPECT_EQ(t[i].wcet, task.vertex(t[i].vertex).wcet);
      if (i > 0) {
        const Time gap = t[i].release - t[i - 1].release;
        bool found = false;
        for (std::int32_t ei : task.out_edges(t[i - 1].vertex)) {
          const DrtEdge& e = task.edges()[static_cast<std::size_t>(ei)];
          if (e.to == t[i].vertex && e.separation == gap) found = true;
        }
        EXPECT_TRUE(found) << "hop " << i;
      }
    }
  }
}

TEST(TraceGen, RandomWalkSeparationsAreAtLeastMinimal) {
  const DrtTask task = test::small_task();
  Rng rng(6);
  for (int trial = 0; trial < 20; ++trial) {
    const Trace t = trace_random_walk(task, rng, Time(150), 0.5, Time(10));
    for (std::size_t i = 1; i < t.size(); ++i) {
      const Time gap = t[i].release - t[i - 1].release;
      Time min_sep = Time::unbounded();
      for (std::int32_t ei : task.out_edges(t[i - 1].vertex)) {
        const DrtEdge& e = task.edges()[static_cast<std::size_t>(ei)];
        if (e.to == t[i].vertex) min_sep = min(min_sep, e.separation);
      }
      ASSERT_FALSE(min_sep.is_unbounded());
      EXPECT_GE(gap, min_sep) << "hop " << i;
    }
  }
}

TEST(Oracle, SingleSporadicVertexExact) {
  // Self-loop task e=2, p=5 on unit service: worst delay is 2.
  DrtBuilder b("s");
  const VertexId v = b.add_vertex("V", Work(2), Time(5));
  b.add_edge(v, v, Time(5));
  const DrtTask task = std::move(b).build();
  const Staircase sbf = curve::dedicated(1, Time(100));
  const OracleResult res = oracle_worst_delay(task, sbf, Time(20));
  EXPECT_EQ(res.delay, Time(2));
  EXPECT_EQ(res.backlog, Work(2));
  EXPECT_GT(res.paths_explored, 0u);
}

TEST(Oracle, CountsAllPathsWithoutPruning) {
  // Binary branching: A -> B or C each step, span limit 3 steps of sep 1.
  DrtBuilder b("bin");
  const VertexId a = b.add_vertex("A", Work(1), Time(1));
  const VertexId c = b.add_vertex("B", Work(1), Time(1));
  b.add_edge(a, a, Time(1)).add_edge(a, c, Time(1));
  b.add_edge(c, a, Time(1)).add_edge(c, c, Time(1));
  const DrtTask task = std::move(b).build();
  const Staircase sbf = curve::dedicated(2, Time(100));
  const OracleResult res = oracle_worst_delay(task, sbf, Time(3));
  // Maximal paths: 2 starts * 2^3 branch choices = 16.
  EXPECT_EQ(res.paths_explored, 16u);
}

}  // namespace
}  // namespace strt
