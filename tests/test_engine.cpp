// Unit tests of the strt::engine layer: task/curve fingerprints, the
// hash-consing intern table, workload-curve memoization with
// horizon-extension reuse, derived-op caching, pseudo-inverse memos, and
// the caching-off pass-through mode.

#include <gtest/gtest.h>

#include "curves/builders.hpp"
#include "curves/hull.hpp"
#include "curves/minplus.hpp"
#include "engine/fingerprint.hpp"
#include "engine/workspace.hpp"
#include "graph/drt.hpp"
#include "graph/workload.hpp"
#include "resource/supply.hpp"

namespace strt {
namespace {

DrtTask demo_task(const std::string& name, Work burst_wcet) {
  DrtBuilder b(name);
  b.add_vertex("B", burst_wcet, Time(60));
  b.add_vertex("T", Work(1), Time(20));
  b.add_edge(0, 1, Time(9));
  b.add_edge(1, 1, Time(9));
  b.add_edge(1, 0, Time(70));
  return std::move(b).build();
}

TEST(EngineFingerprint, TaskFingerprintIsStructuralAndNameBlind) {
  const DrtTask a = demo_task("alpha", Work(8));
  const DrtTask b = demo_task("beta", Work(8));
  const DrtTask c = demo_task("alpha", Work(9));
  EXPECT_NE(a.fingerprint(), 0u);
  EXPECT_EQ(a.fingerprint(), b.fingerprint());  // names don't matter
  EXPECT_NE(a.fingerprint(), c.fingerprint());  // wcet does
}

TEST(EngineFingerprint, CurveFingerprintTracksContent) {
  const DrtTask t = demo_task("t", Work(8));
  const Staircase c1 = rbf(t, Time(200));
  const Staircase c2 = rbf(t, Time(200));
  const Staircase c3 = rbf(t, Time(300));
  EXPECT_EQ(engine::fingerprint(c1), engine::fingerprint(c2));
  EXPECT_NE(engine::fingerprint(c1), engine::fingerprint(c3));
}

TEST(EngineWorkspace, InternDeduplicates) {
  engine::Workspace ws(true);
  const DrtTask t = demo_task("t", Work(8));
  const engine::CurvePtr a = ws.intern(rbf(t, Time(200)));
  const engine::CurvePtr b = ws.intern(rbf(t, Time(200)));
  EXPECT_EQ(a.get(), b.get());
  EXPECT_GT(ws.stats().bytes, 0u);
}

TEST(EngineWorkspace, RbfMemoizedWithHorizonExtensionReuse) {
  engine::Workspace ws(true);
  const DrtTask t = demo_task("t", Work(8));

  const engine::CurvePtr big = ws.rbf(t, Time(512));
  EXPECT_EQ(ws.stats().hits, 0u);

  // Exact repeat: a hit, same canonical instance.
  const engine::CurvePtr again = ws.rbf(t, Time(512));
  EXPECT_EQ(big.get(), again.get());
  EXPECT_GE(ws.stats().hits, 1u);

  // Smaller horizon: answered by truncating the cached curve, and the
  // truncation must be bit-identical to a fresh computation.
  const engine::CurvePtr small = ws.rbf(t, Time(100));
  EXPECT_EQ(*small, rbf(t, Time(100)));
  EXPECT_GE(ws.stats().hits, 2u);
}

TEST(EngineWorkspace, DbfMatchesFreeFunction) {
  engine::Workspace ws(true);
  // Frame-separated variant: every deadline within the outgoing
  // separations, so the exact dbf staircase is defined.
  DrtBuilder b("frame");
  b.add_vertex("B", Work(4), Time(9));
  b.add_vertex("T", Work(1), Time(9));
  b.add_edge(0, 1, Time(9));
  b.add_edge(1, 1, Time(9));
  b.add_edge(1, 0, Time(70));
  const DrtTask t = std::move(b).build();
  ASSERT_TRUE(t.has_frame_separation());
  EXPECT_EQ(*ws.dbf(t, Time(400)), dbf(t, Time(400)));
  EXPECT_EQ(*ws.dbf(t, Time(150)), dbf(t, Time(150)));
}

TEST(EngineWorkspace, SbfMemoizedByDescriptionAndHorizon) {
  engine::Workspace ws(true);
  const Supply s = Supply::tdma(Time(3), Time(8));
  const engine::CurvePtr a = ws.sbf(s, Time(200));
  const engine::CurvePtr b = ws.sbf(s, Time(200));
  EXPECT_EQ(a.get(), b.get());
  EXPECT_EQ(*a, s.sbf(Time(200)));
  // Different horizon is a fresh entry (tails forbid truncation reuse).
  EXPECT_EQ(*ws.sbf(s, Time(100)), s.sbf(Time(100)));
}

TEST(EngineWorkspace, DerivedOpsMatchFreeFunctions) {
  engine::Workspace ws(true);
  const DrtTask t1 = demo_task("t1", Work(8));
  const DrtTask t2 = demo_task("t2", Work(3));
  const Staircase f = rbf(t1, Time(300));
  const Staircase g = rbf(t2, Time(300));
  const Staircase beta = Supply::tdma(Time(5), Time(10)).sbf(Time(300));

  EXPECT_EQ(*ws.pointwise_add(f, g), pointwise_add(f, g));
  EXPECT_EQ(*ws.minplus_conv(f, g), minplus_conv(f, g));
  EXPECT_EQ(*ws.leftover_service(beta, g), leftover_service(beta, g));
  EXPECT_EQ(*ws.concave_hull_staircase(f), concave_hull_staircase(f));

  // Second identical query is served from the derived-op table.
  const std::uint64_t hits = ws.stats().hits;
  EXPECT_EQ(*ws.pointwise_add(f, g), pointwise_add(f, g));
  EXPECT_GT(ws.stats().hits, hits);
}

TEST(EngineWorkspace, PseudoInverseMatchesDirectLookups) {
  const Staircase beta = Supply::tdma(Time(4), Time(9)).sbf(Time(300));
  for (const bool caching : {true, false}) {
    engine::Workspace ws(caching);
    const engine::Workspace::PseudoInverse inv = ws.inverse_of(beta);
    for (std::int64_t w = 0; w <= beta.value(Time(300)).count(); ++w) {
      EXPECT_EQ(inv(Work(w)), beta.inverse(Work(w)));
    }
    // Repeat pass: memoized answers must not drift.
    for (std::int64_t w = 0; w <= beta.value(Time(300)).count(); ++w) {
      EXPECT_EQ(inv(Work(w)), beta.inverse(Work(w)));
    }
  }
}

TEST(EngineWorkspace, CachingOffIsPassThrough) {
  engine::Workspace ws(false);
  EXPECT_FALSE(ws.caching());
  const DrtTask t = demo_task("t", Work(8));
  const engine::CurvePtr a = ws.rbf(t, Time(256));
  const engine::CurvePtr b = ws.rbf(t, Time(256));
  EXPECT_EQ(*a, *b);
  EXPECT_EQ(*a, rbf(t, Time(256)));
  EXPECT_EQ(ws.stats().hits, 0u);
  EXPECT_GE(ws.stats().misses, 2u);
}

TEST(EngineWorkspace, StatsCountHitsAndMisses) {
  engine::Workspace ws(true);
  const DrtTask t = demo_task("t", Work(8));
  (void)ws.rbf(t, Time(128));
  const engine::WorkspaceStats after_miss = ws.stats();
  EXPECT_EQ(after_miss.hits, 0u);
  EXPECT_EQ(after_miss.misses, 1u);
  (void)ws.rbf(t, Time(128));
  const engine::WorkspaceStats after_hit = ws.stats();
  EXPECT_EQ(after_hit.hits, 1u);
  EXPECT_EQ(after_hit.misses, 1u);
}

}  // namespace
}  // namespace strt
