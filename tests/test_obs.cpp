#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "core/structural.hpp"
#include "graph/explore.hpp"
#include "obs/counters.hpp"
#include "obs/report.hpp"
#include "obs/span.hpp"
#include "testutil.hpp"

namespace strt {
namespace {

/// Every test runs with observability on and a clean slate, and leaves
/// the process-global state disabled and zeroed for the next test.
class ObsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    obs::set_enabled(true);
    obs::Registry::global().reset();
    obs::reset_spans();
  }
  void TearDown() override {
    obs::Registry::global().reset();
    obs::reset_spans();
    obs::set_enabled(false);
  }
};

TEST_F(ObsTest, CounterAddAndReset) {
  obs::Counter& c = obs::counter("test.counter_add");
  EXPECT_EQ(c.value(), 0u);
  c.add();
  c.add(41);
  EXPECT_EQ(c.value(), 42u);

  obs::Registry::global().reset();
  EXPECT_EQ(c.value(), 0u);  // same cell, zeroed
  c.add(7);
  EXPECT_EQ(c.value(), 7u);
}

TEST_F(ObsTest, CounterIsNoOpWhenDisabled) {
  obs::Counter& c = obs::counter("test.disabled");
  obs::set_enabled(false);
  c.add(100);
  EXPECT_EQ(c.value(), 0u);
  obs::set_enabled(true);
  c.add(1);
  EXPECT_EQ(c.value(), 1u);
}

TEST_F(ObsTest, GaugeTracksValueAndHighWater) {
  obs::Gauge& g = obs::gauge("test.gauge");
  g.set(10);
  g.set(25);
  g.set(5);
  EXPECT_EQ(g.value(), 5);
  EXPECT_EQ(g.max_value(), 25);
}

TEST_F(ObsTest, RegistryIteratesInRegistrationOrder) {
  obs::counter("test.order.zz").add(1);
  obs::counter("test.order.aa").add(2);
  obs::counter("test.order.mm").add(3);

  std::vector<std::string> seen;
  for (const obs::CounterSample& s : obs::Registry::global().counters()) {
    if (s.name.rfind("test.order.", 0) == 0) seen.push_back(s.name);
  }
  const std::vector<std::string> want{"test.order.zz", "test.order.aa",
                                      "test.order.mm"};
  EXPECT_EQ(seen, want);

  // Re-lookup returns the same cell, not a new registration.
  obs::counter("test.order.zz").add(10);
  EXPECT_EQ(obs::counter("test.order.zz").value(), 11u);
}

TEST_F(ObsTest, CountersAreThreadSafe) {
  obs::Counter& c = obs::counter("test.threads");
  constexpr int kThreads = 4;
  constexpr int kAddsPerThread = 10'000;
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&c] {
      for (int i = 0; i < kAddsPerThread; ++i) c.add();
    });
  }
  // Concurrent registration of fresh names must not invalidate `c`.
  obs::counter("test.threads.other").add(1);
  for (std::thread& w : workers) w.join();
  EXPECT_EQ(c.value(),
            static_cast<std::uint64_t>(kThreads) * kAddsPerThread);
}

TEST_F(ObsTest, SpansNestAndAccumulate) {
  {
    const obs::Span outer("outer");
    {
      const obs::Span inner("inner");
    }
    {
      const obs::Span inner("inner");  // same path -> same node
    }
  }
  {
    const obs::Span outer("outer");  // re-entered top-level phase
  }

  const std::vector<obs::SpanSample> tree = obs::span_tree();
  ASSERT_EQ(tree.size(), 1u);
  EXPECT_EQ(tree[0].name, "outer");
  EXPECT_EQ(tree[0].count, 2u);
  EXPECT_GE(tree[0].total_ns, 0);
  ASSERT_EQ(tree[0].children.size(), 1u);
  EXPECT_EQ(tree[0].children[0].name, "inner");
  EXPECT_EQ(tree[0].children[0].count, 2u);

  obs::reset_spans();
  EXPECT_TRUE(obs::span_tree().empty());
}

TEST_F(ObsTest, SpansAreFreeWhenDisabled) {
  obs::set_enabled(false);
  {
    const obs::Span s("invisible");
  }
  obs::set_enabled(true);
  EXPECT_TRUE(obs::span_tree().empty());
}

TEST_F(ObsTest, JsonEscape) {
  EXPECT_EQ(obs::json_escape("plain"), "plain");
  EXPECT_EQ(obs::json_escape("a\"b\\c"), "a\\\"b\\\\c");
  EXPECT_EQ(obs::json_escape("\n\t"), "\\n\\t");
  EXPECT_EQ(obs::json_escape(std::string("\x01", 1)), "\\u0001");
}

TEST_F(ObsTest, ReportRoundTripsThroughAnalysis) {
  // Run a real structural analysis so the explorer and curve counters
  // fire, then serialize the report and parse it back.
  const DrtTask task = test::small_task();
  const Supply supply = Supply::tdma(Time(4), Time(5));
  const StructuralResult st = structural_delay(test::workspace(), task, supply);
  ASSERT_FALSE(st.delay.is_unbounded());

  obs::RunReport report("roundtrip");
  report.put("task", task.name());
  report.put("delay", st.delay.count());
  report.put("rate", 0.5);
  report.put("feasible", true);
  report.capture();

  const std::string json = report.to_json();
  const obs::JsonValue doc = obs::JsonValue::parse(json);
  ASSERT_EQ(doc.kind, obs::JsonValue::Kind::Object);

  const obs::JsonValue* schema = doc.find("schema");
  ASSERT_NE(schema, nullptr);
  EXPECT_EQ(schema->string, "strt.obs.report.v1");
  EXPECT_EQ(doc.find("name")->string, "roundtrip");

  const obs::JsonValue* fields = doc.find("fields");
  ASSERT_NE(fields, nullptr);
  EXPECT_EQ(fields->find("task")->string, "small");
  ASSERT_TRUE(fields->find("delay")->is_integer);
  EXPECT_EQ(fields->find("delay")->integer, st.delay.count());
  EXPECT_DOUBLE_EQ(fields->find("rate")->number, 0.5);
  EXPECT_TRUE(fields->find("feasible")->boolean);

  // The analysis must have left its marks: explorer counters and the
  // structural span tree (with the explore phase nested inside).
  const obs::JsonValue* counters = doc.find("counters");
  ASSERT_NE(counters, nullptr);
  const obs::JsonValue* runs = counters->find("explore.runs");
  ASSERT_NE(runs, nullptr);
  EXPECT_GE(runs->integer, 1);
  // The counter aggregates every explore run triggered by the analysis
  // (the busy-window rbf computation explores too), so it dominates the
  // per-result stats.
  const obs::JsonValue* generated = counters->find("explore.generated");
  ASSERT_NE(generated, nullptr);
  EXPECT_GE(static_cast<std::uint64_t>(generated->integer),
            st.stats.generated);

  const obs::JsonValue* spans = doc.find("spans");
  ASSERT_NE(spans, nullptr);
  ASSERT_EQ(spans->kind, obs::JsonValue::Kind::Array);
  bool saw_structural = false;
  bool saw_explore_child = false;
  for (const obs::JsonValue& s : spans->array) {
    if (s.find("name")->string != "structural") continue;
    saw_structural = true;
    for (const obs::JsonValue& c : s.find("children")->array) {
      if (c.find("name")->string == "explore") saw_explore_child = true;
    }
  }
  EXPECT_TRUE(saw_structural);
  EXPECT_TRUE(saw_explore_child);

  // write_json_line == to_json + newline.
  std::ostringstream os;
  report.write_json_line(os);
  EXPECT_EQ(os.str(), json + "\n");
}

TEST_F(ObsTest, ReportPutOverwritesInPlace) {
  obs::RunReport report("overwrite");
  report.put("k1", std::int64_t{1});
  report.put("k2", std::int64_t{2});
  report.put("k1", "replaced");
  ASSERT_EQ(report.fields().size(), 2u);
  EXPECT_EQ(report.fields()[0].first, "k1");
  EXPECT_EQ(std::get<std::string>(report.fields()[0].second), "replaced");
}

TEST_F(ObsTest, JsonParserRejectsMalformedInput) {
  EXPECT_THROW(obs::JsonValue::parse("{"), std::invalid_argument);
  EXPECT_THROW(obs::JsonValue::parse("{} trailing"), std::invalid_argument);
  EXPECT_THROW(obs::JsonValue::parse("[1,]"), std::invalid_argument);
  EXPECT_THROW(obs::JsonValue::parse("\"unterminated"),
               std::invalid_argument);
}

TEST_F(ObsTest, ProgressCallbackFires) {
  const DrtTask task = test::small_task();
  ExploreOptions opts;
  opts.elapsed_limit = Time(200);
  opts.progress_every = 10;
  std::uint64_t calls = 0;
  ExploreProgress last{};
  opts.on_progress = [&](const ExploreProgress& p) {
    ++calls;
    last = p;
    return true;  // keep going
  };
  const ExploreResult res = explore_paths(task, opts);
  EXPECT_FALSE(res.stats.aborted);
  ASSERT_GE(calls, 1u);
  EXPECT_EQ(last.expanded % 10, 0u);
  EXPECT_LE(last.expanded, res.stats.expanded);
  EXPECT_GT(last.arena_size, 0u);
  EXPECT_GE(last.elapsed_seconds, 0.0);
}

TEST_F(ObsTest, ProgressCallbackCanAbort) {
  const DrtTask task = test::small_task();

  ExploreOptions full_opts;
  full_opts.elapsed_limit = Time(200);
  const ExploreResult full = explore_paths(task, full_opts);
  ASSERT_GT(full.stats.expanded, 20u);

  ExploreOptions opts;
  opts.elapsed_limit = Time(200);
  opts.progress_every = 10;
  std::uint64_t calls = 0;
  opts.on_progress = [&](const ExploreProgress&) {
    ++calls;
    return calls < 2;  // cancel at the second report
  };
  const ExploreResult res = explore_paths(task, opts);
  EXPECT_TRUE(res.stats.aborted);
  EXPECT_EQ(calls, 2u);
  EXPECT_LT(res.stats.expanded, full.stats.expanded);
}

TEST_F(ObsTest, StructuralOptionsForwardProgress) {
  const DrtTask task = test::small_task();
  const Supply supply = Supply::tdma(Time(4), Time(5));
  StructuralOptions opts;
  opts.progress_every = 5;
  std::atomic<std::uint64_t> calls{0};
  opts.on_progress = [&](const ExploreProgress&) {
    ++calls;
    return true;
  };
  const StructuralResult st = structural_delay(test::workspace(), task, supply, opts);
  EXPECT_FALSE(st.stats.aborted);
  EXPECT_GE(calls.load(), 1u);
}

}  // namespace
}  // namespace strt
