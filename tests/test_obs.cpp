#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdint>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "core/structural.hpp"
#include "graph/explore.hpp"
#include "obs/counters.hpp"
#include "obs/histogram.hpp"
#include "obs/report.hpp"
#include "obs/span.hpp"
#include "obs/trace.hpp"
#include "testutil.hpp"

namespace strt {
namespace {

/// Every test runs with observability on and a clean slate, and leaves
/// the process-global state disabled and zeroed for the next test.
class ObsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    obs::set_enabled(true);
    obs::Registry::global().reset();
    obs::reset_spans();
  }
  void TearDown() override {
    obs::Registry::global().reset();
    obs::reset_spans();
    obs::set_enabled(false);
  }
};

TEST_F(ObsTest, CounterAddAndReset) {
  obs::Counter& c = obs::counter("test.counter_add");
  EXPECT_EQ(c.value(), 0u);
  c.add();
  c.add(41);
  EXPECT_EQ(c.value(), 42u);

  obs::Registry::global().reset();
  EXPECT_EQ(c.value(), 0u);  // same cell, zeroed
  c.add(7);
  EXPECT_EQ(c.value(), 7u);
}

TEST_F(ObsTest, CounterIsNoOpWhenDisabled) {
  obs::Counter& c = obs::counter("test.disabled");
  obs::set_enabled(false);
  c.add(100);
  EXPECT_EQ(c.value(), 0u);
  obs::set_enabled(true);
  c.add(1);
  EXPECT_EQ(c.value(), 1u);
}

TEST_F(ObsTest, GaugeTracksValueAndHighWater) {
  obs::Gauge& g = obs::gauge("test.gauge");
  g.set(10);
  g.set(25);
  g.set(5);
  EXPECT_EQ(g.value(), 5);
  EXPECT_EQ(g.max_value(), 25);
}

TEST_F(ObsTest, RegistrySnapshotsAreNameSorted) {
  // Registration order is zz, aa, mm; snapshots come back sorted by name
  // regardless, so report diffs are stable across instrumentation-reach
  // changes.
  obs::counter("test.order.zz").add(1);
  obs::counter("test.order.aa").add(2);
  obs::counter("test.order.mm").add(3);

  std::vector<std::string> seen;
  for (const obs::CounterSample& s : obs::Registry::global().counters()) {
    if (s.name.rfind("test.order.", 0) == 0) seen.push_back(s.name);
  }
  const std::vector<std::string> want{"test.order.aa", "test.order.mm",
                                      "test.order.zz"};
  EXPECT_EQ(seen, want);

  const std::vector<obs::CounterSample> all =
      obs::Registry::global().counters();
  EXPECT_TRUE(std::is_sorted(
      all.begin(), all.end(),
      [](const obs::CounterSample& a, const obs::CounterSample& b) {
        return a.name < b.name;
      }));

  // Re-lookup returns the same cell, not a new registration.
  obs::counter("test.order.zz").add(10);
  EXPECT_EQ(obs::counter("test.order.zz").value(), 11u);
}

TEST_F(ObsTest, CountersAreThreadSafe) {
  obs::Counter& c = obs::counter("test.threads");
  constexpr int kThreads = 4;
  constexpr int kAddsPerThread = 10'000;
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&c] {
      for (int i = 0; i < kAddsPerThread; ++i) c.add();
    });
  }
  // Concurrent registration of fresh names must not invalidate `c`.
  obs::counter("test.threads.other").add(1);
  for (std::thread& w : workers) w.join();
  EXPECT_EQ(c.value(),
            static_cast<std::uint64_t>(kThreads) * kAddsPerThread);
}

TEST_F(ObsTest, SpansNestAndAccumulate) {
  {
    const obs::Span outer("outer");
    {
      const obs::Span inner("inner");
    }
    {
      const obs::Span inner("inner");  // same path -> same node
    }
  }
  {
    const obs::Span outer("outer");  // re-entered top-level phase
  }

  const std::vector<obs::SpanSample> tree = obs::span_tree();
  ASSERT_EQ(tree.size(), 1u);
  EXPECT_EQ(tree[0].name, "outer");
  EXPECT_EQ(tree[0].count, 2u);
  EXPECT_GE(tree[0].total_ns, 0);
  ASSERT_EQ(tree[0].children.size(), 1u);
  EXPECT_EQ(tree[0].children[0].name, "inner");
  EXPECT_EQ(tree[0].children[0].count, 2u);

  obs::reset_spans();
  EXPECT_TRUE(obs::span_tree().empty());
}

TEST_F(ObsTest, SpansAreFreeWhenDisabled) {
  obs::set_enabled(false);
  {
    const obs::Span s("invisible");
  }
  obs::set_enabled(true);
  EXPECT_TRUE(obs::span_tree().empty());
}

TEST_F(ObsTest, JsonEscape) {
  EXPECT_EQ(obs::json_escape("plain"), "plain");
  EXPECT_EQ(obs::json_escape("a\"b\\c"), "a\\\"b\\\\c");
  EXPECT_EQ(obs::json_escape("\n\t"), "\\n\\t");
  EXPECT_EQ(obs::json_escape(std::string("\x01", 1)), "\\u0001");
}

TEST_F(ObsTest, ReportRoundTripsThroughAnalysis) {
  // Run a real structural analysis so the explorer and curve counters
  // fire, then serialize the report and parse it back.
  const DrtTask task = test::small_task();
  const Supply supply = Supply::tdma(Time(4), Time(5));
  const StructuralResult st = structural_delay(test::workspace(), task, supply);
  ASSERT_FALSE(st.delay.is_unbounded());

  obs::RunReport report("roundtrip");
  report.put("task", task.name());
  report.put("delay", st.delay.count());
  report.put("rate", 0.5);
  report.put("feasible", true);
  report.capture();

  const std::string json = report.to_json();
  const obs::JsonValue doc = obs::JsonValue::parse(json);
  ASSERT_EQ(doc.kind, obs::JsonValue::Kind::Object);

  const obs::JsonValue* schema = doc.find("schema");
  ASSERT_NE(schema, nullptr);
  EXPECT_EQ(schema->string, obs::kReportSchema);
  EXPECT_EQ(schema->string, "strt.obs.report.v2");
  EXPECT_EQ(doc.find("name")->string, "roundtrip");

  const obs::JsonValue* fields = doc.find("fields");
  ASSERT_NE(fields, nullptr);
  EXPECT_EQ(fields->find("task")->string, "small");
  ASSERT_TRUE(fields->find("delay")->is_integer);
  EXPECT_EQ(fields->find("delay")->integer, st.delay.count());
  EXPECT_DOUBLE_EQ(fields->find("rate")->number, 0.5);
  EXPECT_TRUE(fields->find("feasible")->boolean);

  // The analysis must have left its marks: explorer counters and the
  // structural span tree (with the explore phase nested inside).
  const obs::JsonValue* counters = doc.find("counters");
  ASSERT_NE(counters, nullptr);
  const obs::JsonValue* runs = counters->find("explore.runs");
  ASSERT_NE(runs, nullptr);
  EXPECT_GE(runs->integer, 1);
  // The counter aggregates every explore run triggered by the analysis
  // (the busy-window rbf computation explores too), so it dominates the
  // per-result stats.
  const obs::JsonValue* generated = counters->find("explore.generated");
  ASSERT_NE(generated, nullptr);
  EXPECT_GE(static_cast<std::uint64_t>(generated->integer),
            st.stats.generated);

  // v2: histogram summaries ride along (the explorer records its state
  // count per run).
  const obs::JsonValue* histograms = doc.find("histograms");
  ASSERT_NE(histograms, nullptr);
  const obs::JsonValue* states = histograms->find("explore.states");
  ASSERT_NE(states, nullptr);
  EXPECT_GE(states->find("count")->integer, 1);
  EXPECT_GE(states->find("max")->integer, states->find("p50")->integer);
  EXPECT_GE(states->find("p99")->integer, states->find("p50")->integer);

  const obs::JsonValue* spans = doc.find("spans");
  ASSERT_NE(spans, nullptr);
  ASSERT_EQ(spans->kind, obs::JsonValue::Kind::Array);
  bool saw_structural = false;
  bool saw_explore_child = false;
  for (const obs::JsonValue& s : spans->array) {
    if (s.find("name")->string != "structural") continue;
    saw_structural = true;
    for (const obs::JsonValue& c : s.find("children")->array) {
      if (c.find("name")->string == "explore") saw_explore_child = true;
    }
  }
  EXPECT_TRUE(saw_structural);
  EXPECT_TRUE(saw_explore_child);

  // write_json_line == to_json + newline.
  std::ostringstream os;
  report.write_json_line(os);
  EXPECT_EQ(os.str(), json + "\n");
}

TEST_F(ObsTest, ReportPutOverwritesInPlace) {
  obs::RunReport report("overwrite");
  report.put("k1", std::int64_t{1});
  report.put("k2", std::int64_t{2});
  report.put("k1", "replaced");
  ASSERT_EQ(report.fields().size(), 2u);
  EXPECT_EQ(report.fields()[0].first, "k1");
  EXPECT_EQ(std::get<std::string>(report.fields()[0].second), "replaced");
}

TEST_F(ObsTest, JsonParserRejectsMalformedInput) {
  EXPECT_THROW(obs::JsonValue::parse("{"), std::invalid_argument);
  EXPECT_THROW(obs::JsonValue::parse("{} trailing"), std::invalid_argument);
  EXPECT_THROW(obs::JsonValue::parse("[1,]"), std::invalid_argument);
  EXPECT_THROW(obs::JsonValue::parse("\"unterminated"),
               std::invalid_argument);
}

TEST_F(ObsTest, ProgressCallbackFires) {
  const DrtTask task = test::small_task();
  ExploreOptions opts;
  opts.elapsed_limit = Time(200);
  opts.progress_every = 10;
  std::uint64_t calls = 0;
  ExploreProgress last{};
  opts.on_progress = [&](const ExploreProgress& p) {
    ++calls;
    last = p;
    return true;  // keep going
  };
  const ExploreResult res = explore_paths(task, opts);
  EXPECT_FALSE(res.stats.aborted);
  ASSERT_GE(calls, 1u);
  EXPECT_EQ(last.expanded % 10, 0u);
  EXPECT_LE(last.expanded, res.stats.expanded);
  EXPECT_GT(last.arena_size, 0u);
  EXPECT_GE(last.elapsed_seconds, 0.0);
}

TEST_F(ObsTest, ProgressCallbackCanAbort) {
  const DrtTask task = test::small_task();

  ExploreOptions full_opts;
  full_opts.elapsed_limit = Time(200);
  const ExploreResult full = explore_paths(task, full_opts);
  ASSERT_GT(full.stats.expanded, 20u);

  ExploreOptions opts;
  opts.elapsed_limit = Time(200);
  opts.progress_every = 10;
  std::uint64_t calls = 0;
  opts.on_progress = [&](const ExploreProgress&) {
    ++calls;
    return calls < 2;  // cancel at the second report
  };
  const ExploreResult res = explore_paths(task, opts);
  EXPECT_TRUE(res.stats.aborted);
  EXPECT_EQ(calls, 2u);
  EXPECT_LT(res.stats.expanded, full.stats.expanded);
}

TEST_F(ObsTest, HistogramBucketBoundaries) {
  // Exact unit buckets for 0..3.
  for (std::uint64_t v = 0; v < 4; ++v) {
    EXPECT_EQ(obs::histogram_bucket(v), v);
    EXPECT_EQ(obs::histogram_bucket_lower(v), v);
  }
  // Every value sits inside its bucket's [lower, upper] range, bucket
  // indexes are monotone in the value, and the relative bucket width
  // never exceeds 25% of the lower edge.
  const std::uint64_t probes[] = {4,    5,      6,     7,     8,   9,
                                  15,   16,     17,    100,   1000, 4095,
                                  4096, 100000, 1u << 20, (1u << 20) + 1};
  std::size_t prev = 0;
  for (const std::uint64_t v : probes) {
    const std::size_t b = obs::histogram_bucket(v);
    ASSERT_LT(b, obs::kHistogramBuckets);
    EXPECT_LE(obs::histogram_bucket_lower(b), v);
    EXPECT_GE(obs::histogram_bucket_upper(b), v);
    EXPECT_GE(b, prev);
    prev = b;
    if (v >= 4) {
      const std::uint64_t lo = obs::histogram_bucket_lower(b);
      const std::uint64_t width =
          obs::histogram_bucket_upper(b) - lo + 1;
      EXPECT_LE(width * 4, lo);
    }
  }
  // Power-of-two edges start a fresh sub-bucket: 2^k maps one past the
  // bucket of 2^k - 1.
  for (int k = 3; k < 40; ++k) {
    const std::uint64_t edge = std::uint64_t{1} << k;
    EXPECT_EQ(obs::histogram_bucket(edge),
              obs::histogram_bucket(edge - 1) + 1);
    EXPECT_EQ(obs::histogram_bucket_lower(obs::histogram_bucket(edge)),
              edge);
  }
  // The top of the range still lands in a valid bucket.
  EXPECT_LT(obs::histogram_bucket(~std::uint64_t{0}),
            obs::kHistogramBuckets);
}

TEST_F(ObsTest, HistogramQuantileMatchesSortedOracle) {
  obs::Histogram& h = obs::histogram("test.quantile");
  // Deterministic pseudo-random samples spanning several octaves.
  std::vector<std::uint64_t> values;
  std::uint64_t x = 0x243F6A8885A308D3ULL;
  for (int i = 0; i < 5000; ++i) {
    x = x * 6364136223846793005ULL + 1442695040888963407ULL;
    const std::uint64_t v = (x >> 33) % 1'000'000;
    values.push_back(v);
    h.record(v);
  }
  std::sort(values.begin(), values.end());

  const obs::HistogramSnapshot snap = h.snapshot();
  ASSERT_EQ(snap.count, values.size());
  EXPECT_EQ(snap.max, values.back());
  std::uint64_t sum = 0;
  for (const std::uint64_t v : values) sum += v;
  EXPECT_EQ(snap.sum, sum);

  for (const double q : {0.10, 0.50, 0.90, 0.99, 1.0}) {
    const std::size_t rank = static_cast<std::size_t>(
        std::max<double>(1.0, std::ceil(q * static_cast<double>(
                                                values.size()))));
    const std::uint64_t oracle = values[rank - 1];
    const std::uint64_t est = snap.quantile(q);
    // The estimate is the bucket upper edge: never below the true order
    // statistic, and at most one 25%-wide bucket above it.
    EXPECT_GE(est, oracle) << "q=" << q;
    EXPECT_LE(est, oracle + oracle / 4 + 1) << "q=" << q;
  }
  EXPECT_EQ(snap.quantile(1.0), values.back());
}

TEST_F(ObsTest, HistogramSnapshotMergeAccumulates) {
  obs::Histogram& a = obs::histogram("test.merge.a");
  obs::Histogram& b = obs::histogram("test.merge.b");
  for (std::uint64_t v = 0; v < 100; ++v) a.record(v);
  for (std::uint64_t v = 100; v < 300; ++v) b.record(v);

  obs::HistogramSnapshot merged = a.snapshot();
  merged.merge(b.snapshot());
  EXPECT_EQ(merged.count, 300u);
  EXPECT_EQ(merged.max, 299u);
  EXPECT_EQ(merged.sum, 299u * 300u / 2);
}

TEST_F(ObsTest, HistogramShardsMergeAcrossThreads) {
  obs::Histogram& h = obs::histogram("test.shards");
  constexpr int kThreads = 8;
  constexpr std::uint64_t kPerThread = 10'000;
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&h, t] {
      // Distinct value ranges per thread so a lost shard is visible in
      // the sum, not only the count.
      const std::uint64_t base = static_cast<std::uint64_t>(t) * 1000;
      for (std::uint64_t i = 0; i < kPerThread; ++i) {
        h.record(base + (i % 997));
      }
    });
  }
  for (std::thread& w : workers) w.join();

  const obs::HistogramSnapshot snap = h.snapshot();
  EXPECT_EQ(snap.count, kThreads * kPerThread);
  std::uint64_t want_sum = 0;
  std::uint64_t want_max = 0;
  for (int t = 0; t < kThreads; ++t) {
    const std::uint64_t base = static_cast<std::uint64_t>(t) * 1000;
    for (std::uint64_t i = 0; i < kPerThread; ++i) {
      want_sum += base + (i % 997);
      want_max = std::max(want_max, base + (i % 997));
    }
  }
  EXPECT_EQ(snap.sum, want_sum);
  EXPECT_EQ(snap.max, want_max);

  std::uint64_t bucket_total = 0;
  for (const std::uint64_t c : snap.buckets) bucket_total += c;
  EXPECT_EQ(bucket_total, snap.count);
}

TEST_F(ObsTest, HistogramIsNoOpWhenDisabled) {
  obs::Histogram& h = obs::histogram("test.hist_disabled");
  obs::set_enabled(false);
  h.record(42);
  EXPECT_EQ(h.snapshot().count, 0u);
  obs::set_enabled(true);
  h.record(42);
  EXPECT_EQ(h.snapshot().count, 1u);
}

TEST_F(ObsTest, TraceRoundTripsThroughChromeJson) {
  obs::TraceContext ctx = obs::TraceContext::make();
  ASSERT_TRUE(static_cast<bool>(ctx));

  const std::int64_t t0 = obs::trace_now_us();
  ctx.add_complete_span("queue", t0 - 50, t0);
  {
    obs::TraceSpanScope request(ctx, "request");
    request.attr("kind", "structural");
    {
      obs::TraceSpanScope validate(ctx, "validate");
    }
    {
      obs::TraceSpanScope run(ctx, "run");
      // The analyses' own profile spans mirror into the active trace.
      const obs::Span explore("explore");
    }
  }

  const obs::RequestTrace before = ctx.snapshot();
  ASSERT_EQ(before.spans.size(), 5u);

  const std::string json = obs::trace_to_chrome_json({before});
  const std::vector<obs::RequestTrace> parsed =
      obs::parse_chrome_trace(json);
  ASSERT_EQ(parsed.size(), 1u);
  const obs::RequestTrace& after = parsed[0];
  EXPECT_EQ(after.trace_id, before.trace_id);
  ASSERT_EQ(after.spans.size(), before.spans.size());

  // Parent/child nesting survives the round trip: queue and request are
  // roots; validate, run, and explore hang off the right parents.
  const obs::TraceSpanRecord* queue = after.find("queue");
  const obs::TraceSpanRecord* request = after.find("request");
  const obs::TraceSpanRecord* validate = after.find("validate");
  const obs::TraceSpanRecord* run = after.find("run");
  const obs::TraceSpanRecord* explore = after.find("explore");
  ASSERT_NE(queue, nullptr);
  ASSERT_NE(request, nullptr);
  ASSERT_NE(validate, nullptr);
  ASSERT_NE(run, nullptr);
  ASSERT_NE(explore, nullptr);
  EXPECT_EQ(queue->parent, 0u);
  EXPECT_EQ(request->parent, 0u);
  EXPECT_EQ(validate->parent, request->id);
  EXPECT_EQ(run->parent, request->id);
  EXPECT_EQ(explore->parent, run->id);

  // Attributes survive; timestamps are monotone in snapshot order and
  // children start no earlier than their parents.
  bool saw_kind = false;
  for (const auto& [k, v] : request->attrs) {
    if (k == "kind" && v == "structural") saw_kind = true;
  }
  EXPECT_TRUE(saw_kind);
  for (std::size_t i = 1; i < after.spans.size(); ++i) {
    EXPECT_LE(after.spans[i - 1].start_us, after.spans[i].start_us);
  }
  EXPECT_GE(validate->start_us, request->start_us);
  EXPECT_GE(run->start_us, request->start_us);
  EXPECT_GE(explore->start_us, run->start_us);
  for (const obs::TraceSpanRecord& s : after.spans) {
    EXPECT_GE(s.dur_us, 0);
  }

  // Malformed documents are rejected, not misread.
  EXPECT_THROW(obs::parse_chrome_trace("{}"), std::invalid_argument);
  EXPECT_THROW(
      obs::parse_chrome_trace(
          R"({"traceEvents":[],"otherData":{"schema":"other.v9"}})"),
      std::invalid_argument);
}

TEST_F(ObsTest, DisengagedTraceContextIsInert) {
  obs::TraceContext ctx;  // default: disengaged
  EXPECT_FALSE(static_cast<bool>(ctx));
  EXPECT_EQ(ctx.trace_id(), 0u);
  EXPECT_EQ(ctx.add_complete_span("x", 0, 1), 0u);
  {
    obs::TraceSpanScope scope(ctx, "ignored");
    scope.attr("k", "v");
    EXPECT_EQ(scope.id(), 0u);
  }
  EXPECT_TRUE(ctx.snapshot().empty());
}

TEST_F(ObsTest, ReportEmbedsRequestTrace) {
  obs::TraceContext ctx = obs::TraceContext::make();
  {
    obs::TraceSpanScope request(ctx, "request");
    obs::TraceSpanScope validate(ctx, "validate");
  }

  obs::RunReport report("traced");
  report.set_trace(ctx.snapshot());
  const obs::JsonValue doc = obs::JsonValue::parse(report.to_json());
  const obs::JsonValue* trace = doc.find("trace");
  ASSERT_NE(trace, nullptr);
  EXPECT_TRUE(trace->find("trace_id")->is_integer);
  const obs::JsonValue* spans = trace->find("spans");
  ASSERT_NE(spans, nullptr);
  ASSERT_EQ(spans->array.size(), 2u);
  EXPECT_EQ(spans->array[0].find("name")->string, "request");

  // Without a trace the member is absent (schema keeps it optional).
  obs::RunReport bare("bare");
  EXPECT_EQ(obs::JsonValue::parse(bare.to_json()).find("trace"), nullptr);
}

TEST_F(ObsTest, StructuralOptionsForwardProgress) {
  const DrtTask task = test::small_task();
  const Supply supply = Supply::tdma(Time(4), Time(5));
  StructuralOptions opts;
  opts.progress_every = 5;
  std::atomic<std::uint64_t> calls{0};
  opts.on_progress = [&](const ExploreProgress&) {
    ++calls;
    return true;
  };
  const StructuralResult st = structural_delay(test::workspace(), task, supply, opts);
  EXPECT_FALSE(st.stats.aborted);
  EXPECT_GE(calls.load(), 1u);
}

}  // namespace
}  // namespace strt
