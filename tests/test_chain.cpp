#include <gtest/gtest.h>

#include <vector>

#include "core/chain.hpp"
#include "curves/builders.hpp"
#include "curves/minplus.hpp"
#include "graph/workload.hpp"
#include "model/generator.hpp"
#include "model/sporadic.hpp"
#include "sim/fifo.hpp"
#include "sim/pipeline.hpp"
#include "sim/service.hpp"
#include "sim/trace.hpp"
#include "testutil.hpp"

namespace strt {
namespace {

TEST(OutputArrival, RequiresHorizonHeadroom) {
  const Staircase a = curve::dedicated(1, Time(10));
  const Staircase b = curve::dedicated(1, Time(9));
  EXPECT_THROW((void)output_arrival(a, b), std::invalid_argument);
}

TEST(OutputArrival, SporadicThroughUnitServerIsJitterShift) {
  // Sporadic C=2, T=5 through a dedicated unit server: D = hdev = 2, so
  // the event-based output curve is alpha(t + 2).
  const SporadicTask sp{"s", Work(2), Time(5), Time(5)};
  const Staircase alpha = rbf(sp.to_drt(), Time(120));
  const Staircase beta = curve::dedicated(1, Time(40));
  const Staircase out = output_arrival(alpha, beta);
  for (std::int64_t t = 0; t <= out.horizon().count(); ++t) {
    EXPECT_EQ(out.value(Time(t)), alpha.value(Time(t + 2))) << t;
  }
}

TEST(OutputArrival, BoundsSimulatedDepartures) {
  // Empirical check of the output-arrival theorem: departures of a FIFO
  // component with a conforming service pattern respect alpha (/) beta.
  Rng rng(4141);
  for (int trial = 0; trial < 10; ++trial) {
    DrtGenParams params;
    params.min_vertices = 2;
    params.max_vertices = 5;
    params.min_separation = Time(3);
    params.max_separation = Time(12);
    params.target_utilization = 0.3;
    const GeneratedTask gen = random_drt(rng, params);
    if (gen.exact_utilization >= Rational(2, 5)) continue;  // keep margin
    const DrtTask& task = gen.task;
    const Supply hop = Supply::tdma(Time(3), Time(6));

    const Time span(300);
    const Staircase alpha = rbf(task, span * 2);
    const Staircase beta = hop.sbf(span);
    const Staircase out = output_arrival(alpha, beta);

    const Trace trace = trace_dense_walk(task, rng, Time(250));
    Work total(0);
    for (const SimJob& j : trace) total += j.wcet;
    const Time horizon = Time(250) + beta.inverse(total) + Time(2);
    const SimOutcome sim = simulate_fifo(
        trace, pattern_from_sbf(beta.extended(horizon), horizon));
    ASSERT_TRUE(sim.all_completed);

    // Empirical departure curve: completed work per window.
    std::vector<curve::TraceJob> departures;
    for (const CompletedJob& j : sim.jobs) {
      departures.push_back(curve::TraceJob{j.finish, j.job.wcet});
    }
    const Staircase empirical =
        curve::arrival_of_trace(departures, out.horizon());
    for (std::int64_t t = 0; t <= out.horizon().count(); ++t) {
      EXPECT_LE(empirical.value(Time(t)), out.value(Time(t)))
          << "trial " << trial << " t=" << t;
    }
  }
}

TEST(Chain, SingleHopMatchesStructural) {
  const SporadicTask sp{"s", Work(3), Time(9), Time(9)};
  const DrtTask task = sp.to_drt();
  const std::vector<Supply> hops{Supply::dedicated(1)};
  const ChainResult res = chain_delay(test::workspace(), task, hops);
  EXPECT_EQ(res.structural, Time(3));
  EXPECT_EQ(res.pboo, Time(3));
  EXPECT_EQ(res.per_hop_sum, Time(3));
  ASSERT_EQ(res.hop_delays.size(), 1u);
}

TEST(Chain, PayBurstOnlyOnceBeatsPerHopSum) {
  const SporadicTask sp{"s", Work(2), Time(5), Time(5)};
  const DrtTask task = sp.to_drt();
  const std::vector<Supply> hops{Supply::dedicated(1), Supply::dedicated(1)};
  const ChainResult res = chain_delay(test::workspace(), task, hops);
  // Convolution of two unit-rate servers is still unit rate, so the
  // end-to-end bound stays 2; the compositional sum pays it twice.
  EXPECT_EQ(res.structural, Time(2));
  EXPECT_EQ(res.pboo, Time(2));
  EXPECT_EQ(res.per_hop_sum, Time(4));
}

TEST(Chain, StructuralEqualsPbooAndBeatsSum) {
  Rng rng(909);
  for (int trial = 0; trial < 8; ++trial) {
    DrtGenParams params;
    params.min_vertices = 2;
    params.max_vertices = 5;
    params.min_separation = Time(4);
    params.max_separation = Time(16);
    params.target_utilization = 0.3;
    const DrtTask task = random_drt(rng, params).task;
    const std::vector<Supply> hops{
        Supply::bounded_delay(Rational(3, 4), Time(4)),
        Supply::tdma(Time(4), Time(7)),
    };
    const ChainResult res = chain_delay(test::workspace(), task, hops);
    ASSERT_FALSE(res.overloaded) << "trial " << trial;
    EXPECT_EQ(res.structural, res.pboo) << "trial " << trial;
    EXPECT_LE(res.pboo, res.per_hop_sum) << "trial " << trial;
    ASSERT_EQ(res.hop_delays.size(), 2u);
    Time sum(0);
    for (Time d : res.hop_delays) sum += d;
    EXPECT_EQ(sum, res.per_hop_sum);
  }
}

TEST(Chain, SimulatedSemanticsRespectTheirBounds) {
  // Cut-through replays must respect the convolution (structural/PBOO)
  // bound; store-and-forward replays must respect the per-hop sum.  The
  // convolution bound is NOT claimed (and does not hold) for
  // store-and-forward -- see core/chain.hpp.
  Rng rng(77777);
  int checked = 0;
  while (checked < 6) {
    DrtGenParams params;
    params.min_vertices = 2;
    params.max_vertices = 4;
    params.min_separation = Time(5);
    params.max_separation = Time(15);
    params.target_utilization = 0.3;
    const GeneratedTask gen = random_drt(rng, params);
    if (gen.exact_utilization >= Rational(1, 2)) continue;
    const DrtTask& task = gen.task;
    const std::vector<Supply> hops{Supply::tdma(Time(4), Time(7)),
                                   Supply::periodic(Time(5), Time(8))};
    const ChainResult res = chain_delay(test::workspace(), task, hops);
    if (res.overloaded) continue;
    ++checked;

    const Time horizon(1500);
    std::vector<ServicePattern> worst_patterns;
    for (const Supply& hop : hops) {
      worst_patterns.push_back(pattern_from_sbf(
          hop.sbf(hop.min_horizon() * 2).extended(horizon), horizon));
    }
    for (int run = 0; run < 6; ++run) {
      const Trace trace =
          run % 2 == 0 ? trace_dense_walk(task, rng, Time(300))
                       : trace_random_walk(task, rng, Time(300), 0.3,
                                           Time(8));
      const PipelineOutcome ct =
          simulate_cut_through(trace, worst_patterns);
      ASSERT_TRUE(ct.all_completed);
      EXPECT_LE(ct.max_delay, res.structural)
          << "instance " << checked << " run " << run;

      const PipelineOutcome sf =
          simulate_store_and_forward(trace, worst_patterns);
      ASSERT_TRUE(sf.all_completed);
      EXPECT_LE(sf.max_delay, res.per_hop_sum)
          << "instance " << checked << " run " << run;
      // S&F can only be slower than cut-through, job by job.
      ASSERT_EQ(sf.delays.size(), ct.delays.size());
      for (std::size_t j = 0; j < sf.delays.size(); ++j) {
        EXPECT_GE(sf.delays[j], ct.delays[j]) << "job " << j;
      }
    }
  }
}

TEST(PipelineSim, SingleHopMatchesFifo) {
  const Trace trace{SimJob{Time(0), Work(3), 0}, SimJob{Time(2), Work(2), 1}};
  const std::vector<ServicePattern> hops{pattern_constant(1, Time(12))};
  const PipelineOutcome ct = simulate_cut_through(trace, hops);
  const PipelineOutcome sf = simulate_store_and_forward(trace, hops);
  const SimOutcome fifo = simulate_fifo(trace, hops[0]);
  EXPECT_EQ(ct.max_delay, fifo.max_delay);
  EXPECT_EQ(sf.max_delay, fifo.max_delay);
}

TEST(PipelineSim, CutThroughStreamsWithinATick) {
  // Two unit-rate hops: a 3-unit job flows through both in 3+... with
  // cut-through the second hop works one unit behind the first, so the
  // job exits at tick 4 (delay 4), not 6.
  const Trace trace{SimJob{Time(0), Work(3), 0}};
  const std::vector<ServicePattern> hops{pattern_constant(1, Time(12)),
                                         pattern_constant(1, Time(12))};
  const PipelineOutcome ct = simulate_cut_through(trace, hops);
  ASSERT_TRUE(ct.all_completed);
  EXPECT_EQ(ct.max_delay, Time(3));  // same-tick forwarding: conv is t
  const PipelineOutcome sf = simulate_store_and_forward(trace, hops);
  ASSERT_TRUE(sf.all_completed);
  EXPECT_EQ(sf.max_delay, Time(6));  // full job re-served downstream
}

TEST(PipelineSim, EmptyTraceAndStarvedHops) {
  const std::vector<ServicePattern> hops{pattern_constant(1, Time(6)),
                                         pattern_constant(1, Time(6))};
  const PipelineOutcome empty = simulate_cut_through({}, hops);
  EXPECT_TRUE(empty.all_completed);
  EXPECT_EQ(empty.max_delay, Time(0));

  // Second hop has zero capacity: nothing completes end to end.
  const Trace trace{SimJob{Time(0), Work(2), 0}};
  const std::vector<ServicePattern> starved{pattern_constant(1, Time(6)),
                                            pattern_constant(0, Time(6))};
  const PipelineOutcome out = simulate_cut_through(trace, starved);
  EXPECT_FALSE(out.all_completed);
  EXPECT_TRUE(out.delays.empty());
  const PipelineOutcome sf = simulate_store_and_forward(trace, starved);
  EXPECT_FALSE(sf.all_completed);
}

TEST(PipelineSim, RejectsMismatchedPatterns) {
  const Trace trace{SimJob{Time(0), Work(1), 0}};
  EXPECT_THROW((void)simulate_cut_through(
                   trace, {pattern_constant(1, Time(5)),
                           pattern_constant(1, Time(6))}),
               std::invalid_argument);
  EXPECT_THROW((void)simulate_store_and_forward(trace, {}),
               std::invalid_argument);
}

TEST(Chain, OverloadDetected) {
  const SporadicTask sp{"s", Work(4), Time(5), Time(5)};
  const std::vector<Supply> hops{Supply::dedicated(1),
                                 Supply::tdma(Time(3), Time(6))};
  const ChainResult res = chain_delay(test::workspace(), sp.to_drt(), hops);
  EXPECT_TRUE(res.overloaded);
  EXPECT_TRUE(res.structural.is_unbounded());
}

TEST(Chain, EmptyChainRejected) {
  const SporadicTask sp{"s", Work(1), Time(5), Time(5)};
  EXPECT_THROW((void)chain_delay(test::workspace(), sp.to_drt(), {}), std::invalid_argument);
}

}  // namespace
}  // namespace strt
