// Parameterized property sweeps: the whole soundness chain of the
// library, instantiated across supply models and load levels.
//
// For every (supply, utilization) cell and several random tasks:
//   * rbf is monotone, zero at zero, and subadditive;
//   * busy windows agree between the structural and curve analyses;
//   * sim <= structural == exact-curve <= hull <= bucket (delay and
//     backlog);
//   * the witness path replays to exactly the claimed delay;
//   * dominance pruning changes nothing but the state counts.

#include <gtest/gtest.h>

#include <sstream>

#include "core/abstractions.hpp"
#include "core/busy_window.hpp"
#include "core/curve_based.hpp"
#include "core/structural.hpp"
#include "graph/workload.hpp"
#include "io/parse.hpp"
#include "model/generator.hpp"
#include "sim/fifo.hpp"
#include "sim/service.hpp"
#include "sim/trace.hpp"
#include "testutil.hpp"

namespace strt {
namespace {

struct PropertyCase {
  const char* label;
  const char* supply_text;  // parsed with io/parse
  double utilization;
  std::uint64_t seed;
};

std::ostream& operator<<(std::ostream& os, const PropertyCase& c) {
  return os << c.label;
}

class SpectrumProperty : public ::testing::TestWithParam<PropertyCase> {};

TEST_P(SpectrumProperty, InvariantBattery) {
  const PropertyCase& pc = GetParam();
  const Supply supply = parse_supply(pc.supply_text);
  Rng rng(pc.seed);

  int analyzed = 0;
  int attempts = 0;
  while (analyzed < 4 && attempts < 40) {
    ++attempts;
    DrtGenParams params;
    params.min_vertices = 2;
    params.max_vertices = 7;
    params.min_separation = Time(3);
    params.max_separation = Time(24);
    params.target_utilization = pc.utilization;
    const GeneratedTask gen = random_drt(rng, params);
    if (!(gen.exact_utilization < supply.long_run_rate())) continue;
    const DrtTask& task = gen.task;
    ++analyzed;

    // --- Workload function sanity.
    const Staircase wl = rbf(task, Time(150));
    EXPECT_EQ(wl.value(Time(0)), Work(0));
    EXPECT_TRUE(wl.is_subadditive());

    // --- Busy windows agree.
    const auto bw = busy_window(test::workspace(), task, supply);
    ASSERT_TRUE(bw.has_value());
    const StructuralResult st = structural_delay(test::workspace(), task, supply);
    const CurveResult cv = curve_delay(test::workspace(), task, supply);
    EXPECT_EQ(st.busy_window, bw->length);
    EXPECT_EQ(cv.busy_window, bw->length);

    // --- The abstraction hierarchy.
    const auto ex = delay_with_abstraction(test::workspace(), task, supply,
                                           WorkloadAbstraction::kExactCurve);
    const auto hull = delay_with_abstraction(test::workspace(), 
        task, supply, WorkloadAbstraction::kConcaveHull);
    const auto bucket = delay_with_abstraction(test::workspace(), 
        task, supply, WorkloadAbstraction::kTokenBucket);
    EXPECT_EQ(st.delay, ex.delay);
    EXPECT_EQ(st.backlog, ex.backlog);
    EXPECT_LE(ex.delay, hull.delay);
    EXPECT_LE(hull.delay, bucket.delay);
    EXPECT_LE(ex.backlog, hull.backlog);
    EXPECT_LE(hull.backlog, bucket.backlog);

    // --- Witness replay hits the bound exactly.
    ASSERT_FALSE(st.witness.empty());
    Trace trace;
    for (const WitnessJob& j : st.witness) {
      trace.push_back(SimJob{j.release, j.wcet, 0});
    }
    const Time horizon =
        bw->sbf.inverse(st.witness.back().cumulative) + Time(2);
    const SimOutcome replay =
        simulate_fifo(trace, pattern_from_sbf(bw->sbf, horizon));
    ASSERT_TRUE(replay.all_completed);
    EXPECT_EQ(replay.max_delay, st.delay);

    // --- Random legal runs stay within both bounds.
    for (int run = 0; run < 3; ++run) {
      const Trace rnd = trace_random_walk(task, rng, Time(250), 0.4,
                                          Time(10));
      Work total(0);
      for (const SimJob& j : rnd) total += j.wcet;
      const Time h2 = Time(250) + bw->sbf.inverse(total) + Time(2);
      const SimOutcome out =
          simulate_fifo(rnd, pattern_from_sbf(bw->sbf.extended(h2), h2));
      ASSERT_TRUE(out.all_completed);
      EXPECT_LE(out.max_delay, st.delay);
      EXPECT_LE(out.max_backlog, st.backlog);
    }

    // --- Pruning is a pure optimization.
    StructuralOptions no_prune;
    no_prune.prune = false;
    no_prune.want_witness = false;
    if (bw->length <= Time(48)) {  // keep the unpruned run tractable
      const StructuralResult full = structural_delay(test::workspace(), task, supply, no_prune);
      EXPECT_EQ(full.delay, st.delay);
      EXPECT_EQ(full.backlog, st.backlog);
      EXPECT_GE(full.stats.generated, st.stats.generated);
    }
  }
  ASSERT_GE(analyzed, 1) << "generator never fit under the supply rate";
}

constexpr PropertyCase kCases[] = {
    {"dedicated_low", "dedicated rate 1", 0.25, 11},
    {"dedicated_high", "dedicated rate 1", 0.70, 12},
    {"tdma_low", "tdma slot 4 cycle 8", 0.20, 13},
    {"tdma_tight", "tdma slot 4 cycle 8", 0.42, 14},
    {"tdma_coarse", "tdma slot 2 cycle 9", 0.15, 15},
    {"periodic_low", "periodic budget 3 period 7", 0.20, 16},
    {"periodic_tight", "periodic budget 3 period 7", 0.36, 17},
    {"bdelay_low", "bounded_delay rate 3/4 delay 6", 0.30, 18},
    {"bdelay_tight", "bounded_delay rate 3/4 delay 6", 0.62, 19},
    {"fast_cpu", "dedicated rate 3", 0.9, 20},
};

INSTANTIATE_TEST_SUITE_P(SupplyLoadSweep, SpectrumProperty,
                         ::testing::ValuesIn(kCases),
                         [](const auto& pinfo) {
                           return std::string(pinfo.param.label);
                         });

// ---------------------------------------------------------------------
// Conformance of every concrete pattern generator to its model's sbf,
// parameterized over the supply description.

class PatternConformance
    : public ::testing::TestWithParam<const char*> {};

TEST_P(PatternConformance, EveryGeneratedPatternConforms) {
  const Supply supply = parse_supply(GetParam());
  const Time horizon(120);
  const Staircase sbf = supply.sbf(max(horizon, supply.min_horizon()));
  Rng rng(99);

  std::vector<ServicePattern> patterns;
  if (const auto* ded = std::get_if<DedicatedSupply>(&supply.model())) {
    patterns.push_back(pattern_constant(ded->rate, horizon));
  }
  if (const auto* tdma = std::get_if<TdmaSupply>(&supply.model())) {
    for (std::int64_t phase = 0; phase < tdma->cycle.count(); ++phase) {
      patterns.push_back(
          pattern_tdma(tdma->slot, tdma->cycle, Time(phase), horizon));
    }
  }
  if (const auto* per = std::get_if<PeriodicSupply>(&supply.model())) {
    for (const BudgetPlacement p :
         {BudgetPlacement::kWorstCase, BudgetPlacement::kEarly,
          BudgetPlacement::kLate, BudgetPlacement::kRandom}) {
      patterns.push_back(pattern_periodic_server(per->budget, per->period,
                                                 p, horizon, &rng));
    }
  }
  patterns.push_back(pattern_from_sbf(sbf, horizon));

  for (std::size_t i = 0; i < patterns.size(); ++i) {
    EXPECT_TRUE(pattern_conforms(patterns[i], sbf)) << "pattern " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Supplies, PatternConformance,
    ::testing::Values("dedicated rate 1", "dedicated rate 2",
                      "tdma slot 3 cycle 7", "tdma slot 1 cycle 5",
                      "periodic budget 2 period 6",
                      "periodic budget 5 period 6",
                      "bounded_delay rate 2/3 delay 4"),
    [](const auto& pinfo) {
      std::string name(pinfo.param);
      for (char& c : name) {
        if (c == ' ' || c == '/') c = '_';
      }
      return name;
    });

}  // namespace
}  // namespace strt
