// Determinism contract of the parallel analysis layers: for every
// analysis wired onto exec::parallel_for, an STRT_THREADS=N run must be
// bit-identical to the STRT_THREADS=1 run -- same delays, same stats,
// same orders, same counts -- across a population of random task sets.

#include <gtest/gtest.h>

#include <vector>

#include "core/audsley.hpp"
#include "core/fixed_priority.hpp"
#include "core/joint_fp.hpp"
#include "core/sensitivity.hpp"
#include "exec/exec.hpp"
#include "model/generator.hpp"
#include "testutil.hpp"

namespace strt {
namespace {

constexpr int kTaskSets = 50;

void expect_same(const ExploreStats& a, const ExploreStats& b) {
  EXPECT_EQ(a.generated, b.generated);
  EXPECT_EQ(a.expanded, b.expanded);
  EXPECT_EQ(a.pruned, b.pruned);
  EXPECT_EQ(a.aborted, b.aborted);
}

void expect_same(const FpResult& a, const FpResult& b) {
  EXPECT_EQ(a.overloaded, b.overloaded);
  EXPECT_EQ(a.system_busy_window, b.system_busy_window);
  ASSERT_EQ(a.tasks.size(), b.tasks.size());
  for (std::size_t i = 0; i < a.tasks.size(); ++i) {
    EXPECT_EQ(a.tasks[i].task_index, b.tasks[i].task_index);
    EXPECT_EQ(a.tasks[i].busy_window, b.tasks[i].busy_window);
    EXPECT_EQ(a.tasks[i].structural_delay, b.tasks[i].structural_delay);
    EXPECT_EQ(a.tasks[i].curve_delay, b.tasks[i].curve_delay);
    EXPECT_EQ(a.tasks[i].structural_backlog, b.tasks[i].structural_backlog);
    EXPECT_EQ(a.tasks[i].curve_backlog, b.tasks[i].curve_backlog);
    EXPECT_EQ(a.tasks[i].vertex_delays, b.tasks[i].vertex_delays);
    EXPECT_EQ(a.tasks[i].meets_vertex_deadlines,
              b.tasks[i].meets_vertex_deadlines);
    expect_same(a.tasks[i].stats, b.tasks[i].stats);
  }
}

void expect_same(const JointFpResult& a, const JointFpResult& b) {
  EXPECT_EQ(a.overloaded, b.overloaded);
  EXPECT_EQ(a.joint_delay, b.joint_delay);
  EXPECT_EQ(a.rbf_delay, b.rbf_delay);
  EXPECT_EQ(a.paths_enumerated, b.paths_enumerated);
  EXPECT_EQ(a.paths_analyzed, b.paths_analyzed);
  EXPECT_EQ(a.busy_window, b.busy_window);
  expect_same(a.explore_stats, b.explore_stats);
}

void expect_same(const SensitivityReport& a, const SensitivityReport& b) {
  EXPECT_EQ(a.feasible, b.feasible);
  EXPECT_EQ(a.wcet_slack, b.wcet_slack);
  EXPECT_EQ(a.separation_slack, b.separation_slack);
}

void expect_same(const AudsleyResult& a, const AudsleyResult& b) {
  EXPECT_EQ(a.feasible, b.feasible);
  EXPECT_EQ(a.order, b.order);
  EXPECT_EQ(a.tests_run, b.tests_run);
}

/// Runs `analysis` once serial and once on 4 participants and hands both
/// results to the field-by-field comparison.
template <class Fn>
void serial_vs_parallel(Fn&& analysis) {
  exec::set_thread_count(1);
  const auto serial = analysis();
  exec::set_thread_count(4);
  const auto parallel = analysis();
  exec::set_thread_count(0);
  expect_same(serial, parallel);
}

std::vector<DrtTask> random_set(std::uint64_t seed, std::size_t set_size,
                                double total_util) {
  Rng rng = Rng::split(seed, 0);
  DrtGenParams params;
  params.min_vertices = 2;
  params.max_vertices = 4;
  params.min_separation = Time(6);
  params.max_separation = Time(24);
  auto gen = random_drt_set(rng, set_size, total_util, params);
  std::vector<DrtTask> tasks;
  for (auto& g : gen) tasks.push_back(std::move(g.task));
  return tasks;
}

TEST(ExecEquivalence, FixedPriorityBitIdentical) {
  const Supply supply = Supply::dedicated(1);
  StructuralOptions opts;
  opts.want_witness = false;
  for (int t = 0; t < kTaskSets; ++t) {
    const auto tasks =
        random_set(1000 + static_cast<std::uint64_t>(t), 3, 0.6);
    serial_vs_parallel(
        [&] { return fixed_priority_analysis(test::workspace(), tasks, supply, opts); });
  }
}

TEST(ExecEquivalence, JointFpBitIdentical) {
  const Supply supply = Supply::dedicated(1);
  for (int t = 0; t < kTaskSets; ++t) {
    const auto tasks =
        random_set(2000 + static_cast<std::uint64_t>(t), 3, 0.5);
    serial_vs_parallel([&] {
      return joint_multi_task_fp(test::workspace(), {tasks.data(), 2}, tasks[2], supply, {});
    });
  }
}

TEST(ExecEquivalence, SensitivityBitIdentical) {
  const Supply supply = Supply::tdma(Time(5), Time(10));
  for (int t = 0; t < kTaskSets; ++t) {
    const auto tasks =
        random_set(3000 + static_cast<std::uint64_t>(t), 1, 0.3);
    serial_vs_parallel(
        [&] { return sensitivity_analysis(test::workspace(), tasks[0], supply, {}); });
  }
}

TEST(ExecEquivalence, AudsleyBitIdentical) {
  const Supply supply = Supply::dedicated(1);
  StructuralOptions opts;
  opts.want_witness = false;
  for (int t = 0; t < 10; ++t) {
    const auto tasks =
        random_set(4000 + static_cast<std::uint64_t>(t), 4, 0.7);
    serial_vs_parallel(
        [&] { return audsley_assignment(test::workspace(), tasks, supply, opts); });
  }
}

}  // namespace
}  // namespace strt
