// strt::snapshot + engine::Workspace persistence and eviction.
//
// Pins the warm-start contracts of the persistent snapshot
// (strt.engine.snapshot.v1):
//
//   * Codec round-trip: encode() -> decode() reproduces every section
//     exactly, and the writer's output is deterministic.
//   * Rejection: a flipped magic, an unknown version, a corrupted
//     payload byte (checksum), or a truncated file is rejected whole --
//     load_snapshot() returns false, bumps snapshot.rejected, applies
//     nothing, never throws -- and the workspace cold-starts clean.
//   * Warm-start bit-identity: outcomes of all six analysis kinds are
//     bit-identical with the snapshot off, on, and rejected, both via a
//     bare Workspace and via a restarted svc::Service reusing one
//     snapshot file.
//   * Eviction: a bytes budget is enforced (stats().bytes ends within
//     budget, cache.evictions counts), evicted entries recompute to the
//     same answers, and groups touched under a live pin_batch() are
//     never evicted out from under a batch leader.
//   * Concurrency: save/load racing live queries on a shared workspace
//     is data-race-free (the TSan CI leg runs this suite).
#include <gtest/gtest.h>
#include <unistd.h>

#include <atomic>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "engine/workspace.hpp"
#include "graph/drt.hpp"
#include "model/generator.hpp"
#include "obs/counters.hpp"
#include "snapshot/snapshot.hpp"
#include "svc/api.hpp"
#include "svc/service.hpp"

namespace strt {
namespace {

namespace fs = std::filesystem;

std::vector<DrtTask> random_set(std::uint64_t seed, std::size_t set_size,
                                double total_util) {
  Rng rng = Rng::split(seed, 0);
  DrtGenParams params;
  params.min_vertices = 2;
  params.max_vertices = 4;
  params.min_separation = Time(6);
  params.max_separation = Time(24);
  auto gen = random_drt_set(rng, set_size, total_util, params);
  std::vector<DrtTask> tasks;
  for (auto& g : gen) tasks.push_back(std::move(g.task));
  return tasks;
}

svc::AnalysisRequest request_of_kind(svc::AnalysisKind kind,
                                     std::uint64_t id, std::uint64_t seed) {
  svc::AnalysisRequest req;
  req.id = id;
  req.kind = kind;
  req.supply = Supply::tdma(Time(7), Time(10));
  const bool single = kind == svc::AnalysisKind::kStructural ||
                      kind == svc::AnalysisKind::kSensitivity;
  req.tasks = random_set(seed, single ? 1 : 3, single ? 0.3 : 0.6);
  return req;
}

/// Field-by-field equality of two outcomes (the result variant included);
/// mirrors the test_svc.cpp helper so this suite stands alone.
void expect_same_outcome(const svc::AnalysisOutcome& a,
                         const svc::AnalysisOutcome& b) {
  EXPECT_EQ(a.id, b.id);
  EXPECT_EQ(a.kind, b.kind);
  EXPECT_EQ(a.status, b.status);
  EXPECT_EQ(a.error, b.error);
  ASSERT_EQ(a.result.index(), b.result.index());
  if (const StructuralResult* sa = a.structural()) {
    const StructuralResult* sb = b.structural();
    EXPECT_EQ(sa->delay, sb->delay);
    EXPECT_EQ(sa->backlog, sb->backlog);
    EXPECT_EQ(sa->busy_window, sb->busy_window);
    EXPECT_EQ(sa->vertex_delays, sb->vertex_delays);
    EXPECT_EQ(sa->meets_vertex_deadlines, sb->meets_vertex_deadlines);
    EXPECT_EQ(sa->stats.generated, sb->stats.generated);
    EXPECT_EQ(sa->stats.expanded, sb->stats.expanded);
  }
  if (const FpResult* fa = a.fp()) {
    const FpResult* fb = b.fp();
    EXPECT_EQ(fa->overloaded, fb->overloaded);
    EXPECT_EQ(fa->system_busy_window, fb->system_busy_window);
    ASSERT_EQ(fa->tasks.size(), fb->tasks.size());
    for (std::size_t i = 0; i < fa->tasks.size(); ++i) {
      EXPECT_EQ(fa->tasks[i].structural_delay,
                fb->tasks[i].structural_delay);
      EXPECT_EQ(fa->tasks[i].curve_delay, fb->tasks[i].curve_delay);
      EXPECT_EQ(fa->tasks[i].busy_window, fb->tasks[i].busy_window);
    }
  }
  if (const EdfResult* ea = a.edf()) {
    const EdfResult* eb = b.edf();
    EXPECT_EQ(ea->schedulable, eb->schedulable);
    EXPECT_EQ(ea->overloaded, eb->overloaded);
    EXPECT_EQ(ea->margin, eb->margin);
    EXPECT_EQ(ea->horizon_checked, eb->horizon_checked);
  }
  if (const JointFpResult* ja = a.joint_fp()) {
    const JointFpResult* jb = b.joint_fp();
    EXPECT_EQ(ja->overloaded, jb->overloaded);
    EXPECT_EQ(ja->joint_delay, jb->joint_delay);
    EXPECT_EQ(ja->rbf_delay, jb->rbf_delay);
    EXPECT_EQ(ja->paths_analyzed, jb->paths_analyzed);
  }
  if (const SensitivityReport* ra = a.sensitivity()) {
    const SensitivityReport* rb = b.sensitivity();
    EXPECT_EQ(ra->feasible, rb->feasible);
    EXPECT_EQ(ra->wcet_slack, rb->wcet_slack);
    EXPECT_EQ(ra->separation_slack, rb->separation_slack);
  }
  if (const AudsleyResult* ua = a.audsley()) {
    const AudsleyResult* ub = b.audsley();
    EXPECT_EQ(ua->feasible, ub->feasible);
    EXPECT_EQ(ua->order, ub->order);
    EXPECT_EQ(ua->tests_run, ub->tests_run);
  }
}

/// A scratch file path under the test's temp directory, removed on
/// destruction (and its .tmp sibling, in case a save was interrupted).
struct ScratchFile {
  explicit ScratchFile(const std::string& name)
      : path((fs::temp_directory_path() /
              ("strt_snapshot_test_" + name +
               std::to_string(::getpid()) + ".bin"))
                 .string()) {
    std::error_code ec;
    fs::remove(path, ec);
  }
  ~ScratchFile() {
    std::error_code ec;
    fs::remove(path, ec);
    fs::remove(path + ".tmp", ec);
  }
  std::string path;
};

std::string slurp_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary | std::ios::ate);
  const std::streamsize size = in.tellg();
  std::string bytes(size > 0 ? static_cast<std::size_t>(size) : 0, '\0');
  in.seekg(0);
  in.read(bytes.data(), size);
  return bytes;
}

snapshot::Snapshot sample_snapshot() {
  snapshot::Snapshot snap;
  snapshot::CurveRecord c1;
  c1.fp = 0x1111;
  c1.horizon = 40;
  c1.has_tail = 1;
  c1.tail_period = 10;
  c1.tail_increment = 3;
  c1.times = {0, 7, 22};
  c1.values = {1, 4, 9};
  snapshot::CurveRecord c2;
  c2.fp = 0x2222;
  c2.horizon = 16;
  c2.has_tail = 0;
  c2.tail_period = 1;
  c2.tail_increment = 0;
  c2.times = {0, 16};
  c2.values = {2, 5};
  snap.curves = {c1, c2};
  snap.rbf = {{0xaaa, {{40, 0x1111}}}};
  snap.dbf = {{0xbbb, {{16, 0x2222}, {40, 0x1111}}}};
  snap.sbf = {{"tdma slot 7 cycle 10", 40, 0x1111}};
  snap.derived = {{0, 0x1111, 0x2222, 0x2222}};
  snap.coarse = {{0x1111, 8, 0, 0x2222, 12}};
  return snap;
}

TEST(SnapshotCodec, RoundTripReproducesEverySection) {
  const snapshot::Snapshot snap = sample_snapshot();
  const std::string bytes = snapshot::encode(snap);
  const snapshot::DecodeResult back = snapshot::decode(bytes);
  ASSERT_TRUE(back.ok) << back.error;
  EXPECT_EQ(back.snap.curves, snap.curves);
  EXPECT_EQ(back.snap.rbf, snap.rbf);
  EXPECT_EQ(back.snap.dbf, snap.dbf);
  EXPECT_EQ(back.snap.sbf, snap.sbf);
  EXPECT_EQ(back.snap.derived, snap.derived);
  EXPECT_EQ(back.snap.coarse, snap.coarse);
  EXPECT_EQ(back.snap.entry_count(), snap.entry_count());
  // Deterministic bytes: encoding twice is bit-identical (CI diffs
  // snapshot files across runs).
  EXPECT_EQ(snapshot::encode(snap), bytes);
}

TEST(SnapshotCodec, RejectsMagicVersionChecksumAndTruncation) {
  const std::string good = snapshot::encode(sample_snapshot());
  ASSERT_TRUE(snapshot::decode(good).ok);

  auto expect_rejected = [](std::string bytes, const char* what) {
    const snapshot::DecodeResult r = snapshot::decode(bytes);
    EXPECT_FALSE(r.ok) << what;
    EXPECT_FALSE(r.error.empty()) << what;
    EXPECT_EQ(r.snap.entry_count(), 0u) << what;
  };

  std::string bad = good;
  bad[0] = static_cast<char>(bad[0] ^ 0x7f);
  expect_rejected(bad, "flipped magic");

  bad = good;
  bad[8] = 0x7f;  // version field
  expect_rejected(bad, "unknown version");

  bad = good;
  bad[bad.size() / 2] =
      static_cast<char>(bad[bad.size() / 2] ^ 0x01);  // checksum mismatch
  expect_rejected(bad, "corrupted payload");

  bad = good;
  bad.resize(bad.size() - 9);
  expect_rejected(bad, "truncated file");

  bad = good;
  bad.push_back(0);
  expect_rejected(bad, "trailing bytes");

  expect_rejected(std::string(), "empty input");
}

TEST(SnapshotCodec, ValidateCurveEnforcesCanonicalForm) {
  snapshot::CurveRecord rec = sample_snapshot().curves[0];
  std::string error;
  EXPECT_TRUE(snapshot::validate_curve(rec, &error)) << error;

  snapshot::CurveRecord bad = rec;
  bad.times = {5, 7, 22};  // must start at 0
  EXPECT_FALSE(snapshot::validate_curve(bad, &error));

  bad = rec;
  bad.values = {1, 4, 4};  // must be strictly increasing
  EXPECT_FALSE(snapshot::validate_curve(bad, &error));

  bad = rec;
  bad.horizon = 21;  // below the last breakpoint
  EXPECT_FALSE(snapshot::validate_curve(bad, &error));

  bad = rec;
  bad.tail_period = 0;  // tail period must be >= 1
  EXPECT_FALSE(snapshot::validate_curve(bad, &error));
}

TEST(SnapshotWarmStart, BitIdenticalAcrossAllSixKinds) {
  const ScratchFile file("six_kinds");

  // Cold run of one request per kind, then persist the warmth.
  std::vector<svc::AnalysisOutcome> cold;
  {
    engine::Workspace ws;
    std::uint64_t id = 1;
    for (const svc::AnalysisKind kind : svc::kAllAnalysisKinds) {
      cold.push_back(
          svc::run_request(ws, request_of_kind(kind, id, 100 + id)));
      ++id;
    }
    std::string error;
    ASSERT_TRUE(ws.save_snapshot(file.path, &error)) << error;
  }

  // Fresh workspace, warm-started from disk: outcomes are bit-identical
  // and the warm run answers the curve queries from the cache.
  engine::Workspace warm;
  std::string error;
  ASSERT_TRUE(warm.load_snapshot(file.path, &error)) << error;
  const engine::WorkspaceStats before = warm.stats();
  EXPECT_GT(before.bytes, 0u);
  std::uint64_t id = 1;
  for (const svc::AnalysisKind kind : svc::kAllAnalysisKinds) {
    const svc::AnalysisOutcome out =
        svc::run_request(warm, request_of_kind(kind, id, 100 + id));
    expect_same_outcome(cold[id - 1], out);
    ++id;
  }
  const engine::WorkspaceStats after = warm.stats();
  EXPECT_GT(after.hits, before.hits);
}

TEST(SnapshotWarmStart, SaveLoadRoundTripIsStable) {
  // Loading what save wrote and saving again reproduces the same bytes:
  // nothing is lost or reordered by a round trip through the tables.
  const ScratchFile first("stable_a");
  const ScratchFile second("stable_b");
  {
    engine::Workspace ws;
    (void)svc::run_request(
        ws, request_of_kind(svc::AnalysisKind::kStructural, 1, 101));
    (void)svc::run_request(ws,
                           request_of_kind(svc::AnalysisKind::kEdf, 2, 102));
    ASSERT_TRUE(ws.save_snapshot(first.path));
  }
  engine::Workspace reloaded;
  ASSERT_TRUE(reloaded.load_snapshot(first.path));
  ASSERT_TRUE(reloaded.save_snapshot(second.path));

  EXPECT_EQ(slurp_file(first.path), slurp_file(second.path));
}

TEST(SnapshotWarmStart, RejectedAndMissingFilesColdStartClean) {
  obs::set_enabled(true);
  const ScratchFile file("rejected");

  engine::Workspace seed;
  (void)svc::run_request(
      seed, request_of_kind(svc::AnalysisKind::kStructural, 1, 300));
  ASSERT_TRUE(seed.save_snapshot(file.path));
  const std::string bytes = slurp_file(file.path);
  ASSERT_GT(bytes.size(), 32u);

  obs::Counter& rejected = obs::counter("snapshot.rejected");
  const svc::AnalysisOutcome want = [&] {
    engine::Workspace ws;
    return svc::run_request(
        ws, request_of_kind(svc::AnalysisKind::kStructural, 1, 300));
  }();

  const auto expect_cold_start = [&](const std::string& corrupt,
                                     const char* what) {
    {
      std::ofstream out(file.path, std::ios::binary | std::ios::trunc);
      out.write(corrupt.data(),
                static_cast<std::streamsize>(corrupt.size()));
    }
    const std::uint64_t rejections = rejected.value();
    engine::Workspace ws;
    std::string error;
    EXPECT_FALSE(ws.load_snapshot(file.path, &error)) << what;
    EXPECT_FALSE(error.empty()) << what;
    EXPECT_EQ(rejected.value(), rejections + 1) << what;
    // Nothing was applied and the workspace still answers correctly.
    EXPECT_EQ(ws.stats().bytes, 0u) << what;
    expect_same_outcome(want, svc::run_request(ws, request_of_kind(
                                  svc::AnalysisKind::kStructural, 1, 300)));
  };

  std::string corrupt = bytes;
  corrupt[0] ^= 0x20;
  expect_cold_start(corrupt, "bad magic");

  corrupt = bytes;
  corrupt[8] = 0x09;
  expect_cold_start(corrupt, "future version");

  corrupt = bytes;
  corrupt[corrupt.size() - 1] ^= 0x01;
  expect_cold_start(corrupt, "flipped checksum byte");

  expect_cold_start("short", "garbage file");

  // Missing file: quiet cold start, no rejection counted.
  const std::uint64_t rejections = rejected.value();
  std::error_code ec;
  fs::remove(file.path, ec);
  engine::Workspace ws;
  std::string error;
  EXPECT_FALSE(ws.load_snapshot(file.path, &error));
  EXPECT_EQ(rejected.value(), rejections);
}

TEST(SnapshotWarmStart, ServiceRestartServesWarmBitIdentical) {
  const ScratchFile file("service_restart");
  std::vector<svc::AnalysisRequest> reqs;
  std::uint64_t id = 1;
  for (const svc::AnalysisKind kind : svc::kAllAnalysisKinds) {
    reqs.push_back(request_of_kind(kind, id, 200 + id));
    ++id;
  }

  svc::ServiceOptions opts;
  opts.shards = 2;
  opts.snapshot_path = file.path;
  std::vector<svc::AnalysisOutcome> cold;
  {
    svc::Service service(opts);
    cold = service.run_all(reqs);
    // Destructor saves the final snapshot.
  }
  ASSERT_TRUE(fs::exists(file.path));

  svc::Service restarted(opts);
  const engine::WorkspaceStats loaded = restarted.workspace().stats();
  EXPECT_GT(loaded.bytes, 0u);
  const std::vector<svc::AnalysisOutcome> warm = restarted.run_all(reqs);
  ASSERT_EQ(cold.size(), warm.size());
  for (std::size_t i = 0; i < cold.size(); ++i) {
    expect_same_outcome(cold[i], warm[i]);
  }
  EXPECT_GT(restarted.workspace().stats().hits, loaded.hits);
}

TEST(Eviction, BudgetIsEnforcedAndAnswersAreUnchanged) {
  // Unbudgeted baseline: how many bytes does this workload intern, and
  // what does it answer?
  engine::Workspace baseline;
  std::vector<svc::AnalysisOutcome> want;
  for (std::uint64_t s = 0; s < 6; ++s) {
    want.push_back(svc::run_request(
        baseline,
        request_of_kind(svc::AnalysisKind::kStructural, s + 1, 400 + s)));
  }
  const std::uint64_t full_bytes = baseline.stats().bytes;
  ASSERT_GT(full_bytes, 0u);

  // A budget of half the full working set forces evictions along the
  // way; every outcome stays bit-identical (evicted = recompute).
  engine::Workspace tight(true, full_bytes / 2);
  EXPECT_EQ(tight.cache_bytes_budget(), full_bytes / 2);
  for (std::uint64_t s = 0; s < 6; ++s) {
    expect_same_outcome(
        want[s],
        svc::run_request(tight, request_of_kind(svc::AnalysisKind::kStructural,
                                                s + 1, 400 + s)));
  }
  const engine::WorkspaceStats stats = tight.stats();
  EXPECT_GT(stats.evictions, 0u);
  EXPECT_GT(stats.evicted_bytes, 0u);
  EXPECT_LE(stats.bytes, full_bytes / 2);
}

TEST(Eviction, PinnedBatchGroupsSurvive) {
  engine::Workspace ws;
  // Warm two distinct systems, then arm a tiny budget while a pin taken
  // *before* the second system's queries is alive: every group touched
  // since the pin is exempt, so only the first (stale) system may go.
  const svc::AnalysisRequest old_req =
      request_of_kind(svc::AnalysisKind::kStructural, 1, 500);
  (void)svc::run_request(ws, old_req);

  {
    const engine::Workspace::BatchPin pin = ws.pin_batch();
    // pin_batch() is a no-op until a budget is armed; re-take it after.
    ws.set_cache_bytes_budget(1);  // evict-everything-possible budget
    const engine::Workspace::BatchPin live_pin = ws.pin_batch();
    const svc::AnalysisRequest fresh_req =
        request_of_kind(svc::AnalysisKind::kStructural, 2, 501);
    (void)svc::run_request(ws, fresh_req);
    const std::uint64_t evicted_while_pinned = ws.stats().evicted_bytes;
    // The freshly warmed groups are pinned: repeated queries still hit.
    const std::uint64_t hits_before = ws.stats().hits;
    (void)svc::run_request(ws, fresh_req);
    EXPECT_GT(ws.stats().hits, hits_before);
    EXPECT_EQ(ws.stats().evicted_bytes, evicted_while_pinned);
  }

  // Pins released: the 1-byte budget can now evict the lot.
  ws.set_cache_bytes_budget(1);
  EXPECT_EQ(ws.stats().bytes, 0u);
  EXPECT_GT(ws.stats().evictions, 0u);
}

TEST(SnapshotConcurrency, SaveAndLoadRaceLiveQueries) {
  const ScratchFile file("concurrent");
  engine::Workspace seed;
  (void)svc::run_request(
      seed, request_of_kind(svc::AnalysisKind::kStructural, 1, 600));
  ASSERT_TRUE(seed.save_snapshot(file.path));

  engine::Workspace shared;
  std::atomic<bool> stop{false};
  std::vector<std::thread> workers;
  for (int t = 0; t < 2; ++t) {
    workers.emplace_back([&shared, t, &stop] {
      std::uint64_t s = 600 + static_cast<std::uint64_t>(t);
      while (!stop.load(std::memory_order_relaxed)) {
        (void)svc::run_request(
            shared, request_of_kind(svc::AnalysisKind::kStructural, 1, s));
        s = 600 + (s + 1) % 4;
      }
    });
  }
  for (int round = 0; round < 4; ++round) {
    (void)shared.load_snapshot(file.path);
    std::string error;
    EXPECT_TRUE(shared.save_snapshot(file.path, &error)) << error;
  }
  stop.store(true, std::memory_order_relaxed);
  for (std::thread& w : workers) w.join();

  // The file is still a valid snapshot after the dust settles.
  engine::Workspace check;
  EXPECT_TRUE(check.load_snapshot(file.path));
}

}  // namespace
}  // namespace strt
