// Negative paths of the io layer: malformed task texts, supply specs and
// curve CSVs must come back as diagnostics with line-accurate locations
// and *no partial model* -- never as a half-built task.

#include <gtest/gtest.h>

#include <string>
#include <string_view>

#include "io/curve_csv.hpp"
#include "io/parse.hpp"

namespace strt {
namespace {

bool any_location_contains(const check::CheckResult& r,
                           std::string_view needle) {
  for (const check::Diagnostic& d : r.diagnostics()) {
    if (d.location.find(needle) != std::string::npos) return true;
  }
  return false;
}

TEST(ParseErrors, UnknownDirectiveIsSyntaxErrorWithLine) {
  const ParseResult res = parse_task_checked("task t\nfrobnicate A\n");
  EXPECT_FALSE(res.task.has_value());
  EXPECT_EQ(res.diagnostics.count("parse.syntax"), 1u);
  EXPECT_TRUE(any_location_contains(res.diagnostics, "line 2"));
}

TEST(ParseErrors, MissingFieldNamesTheField) {
  const ParseResult res =
      parse_task_checked("task t\nvertex A wcet 1 deadlin 1\n");
  EXPECT_FALSE(res.task.has_value());
  ASSERT_EQ(res.diagnostics.count("parse.missing-field"), 1u);
  for (const check::Diagnostic& d : res.diagnostics.diagnostics()) {
    if (d.code == "parse.missing-field") {
      EXPECT_NE(d.message.find("deadline"), std::string::npos);
      EXPECT_EQ(d.location, "line 2");
    }
  }
}

TEST(ParseErrors, NonIntegerValue) {
  const ParseResult res =
      parse_task_checked("task t\nvertex A wcet fast deadline 10\n");
  EXPECT_FALSE(res.task.has_value());
  EXPECT_EQ(res.diagnostics.count("parse.invalid-value"), 1u);
}

TEST(ParseErrors, CollectsEveryProblemInOnePass) {
  // Three independent defects on three lines -- a throwing parser would
  // stop at the first; the checked parser must report all of them.
  const ParseResult res = parse_task_checked(
      "task t\n"
      "vertex A wcet x deadline 5\n"
      "vertex A wcet 1 deadline 5\n"
      "edge A Z sep 3\n");
  EXPECT_FALSE(res.task.has_value());
  EXPECT_TRUE(res.diagnostics.has("parse.invalid-value"));
  EXPECT_TRUE(res.diagnostics.has("parse.duplicate-vertex"));
  EXPECT_TRUE(res.diagnostics.has("parse.unknown-vertex"));
  EXPECT_TRUE(any_location_contains(res.diagnostics, "line 2"));
  EXPECT_TRUE(any_location_contains(res.diagnostics, "line 3"));
  EXPECT_TRUE(any_location_contains(res.diagnostics, "line 4"));
}

TEST(ParseErrors, EdgeAndVertexBeforeTask) {
  const ParseResult res =
      parse_task_checked("vertex A wcet 1 deadline 1\nedge A A sep 1\n");
  EXPECT_FALSE(res.task.has_value());
  // Both misplaced directives plus the missing 'task' itself.
  EXPECT_EQ(res.diagnostics.count("parse.syntax"), 2u);
  EXPECT_TRUE(res.diagnostics.has("parse.no-task"));
}

TEST(ParseErrors, SpecLevelDefectsSurfaceAsDiagnostics) {
  // Values parse fine; the model is structurally invalid.  DrtBuilder
  // would throw -- the checked parser reports and returns no task.
  const ParseResult res = parse_task_checked(
      "task t\n"
      "vertex A wcet 0 deadline -2\n"
      "vertex B wcet 1 deadline 1\n"
      "edge A B sep 0\n");
  EXPECT_FALSE(res.task.has_value());
  EXPECT_TRUE(res.diagnostics.has("drt.nonpositive-wcet"));
  EXPECT_TRUE(res.diagnostics.has("drt.nonpositive-deadline"));
  EXPECT_TRUE(res.diagnostics.has("drt.nonpositive-separation"));
}

TEST(ParseErrors, SemanticWarningsStillYieldATask) {
  // Dead-end vertex: analyzable, so the task must be returned alongside
  // the warnings (callers gate on ok(), not clean()).
  const ParseResult res = parse_task_checked(
      "task t\n"
      "vertex A wcet 1 deadline 2\n"
      "vertex B wcet 1 deadline 2\n"
      "edge A A sep 4\n"
      "edge A B sep 2\n");
  ASSERT_TRUE(res.task.has_value());
  EXPECT_TRUE(res.diagnostics.ok());
  EXPECT_TRUE(res.diagnostics.has("drt.dead-end"));
}

TEST(ParseErrors, ThrowingWrapperStillReportsFirstErrorLine) {
  try {
    (void)parse_task("task t\nvertex A wcet ? deadline 1\n");
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("line 2"), std::string::npos);
  }
}

TEST(ParseErrors, SupplyCheckedCollectsInsteadOfThrowing) {
  const SupplyParseResult bad = parse_supply_checked("magic rate 3");
  EXPECT_FALSE(bad.supply.has_value());
  EXPECT_EQ(bad.diagnostics.count("parse.syntax"), 1u);

  const SupplyParseResult good = parse_supply_checked("dedicated rate 2");
  ASSERT_TRUE(good.supply.has_value());
  EXPECT_TRUE(good.diagnostics.clean());
}

TEST(CurveCsvErrors, WrongColumnCount) {
  const CurveReadResult res = read_curve_points_csv("1,2\n3,4,5\n");
  EXPECT_TRUE(res.points.empty());
  EXPECT_EQ(res.diagnostics.count("parse.syntax"), 1u);
  EXPECT_TRUE(any_location_contains(res.diagnostics, "line 2"));
}

TEST(CurveCsvErrors, NonNumericCellAfterData) {
  // A non-numeric first line is a header and is skipped; a later one is
  // an error.
  const CurveReadResult res =
      read_curve_points_csv("time,value\n1,2\nx,9\n");
  EXPECT_TRUE(res.points.empty());
  EXPECT_EQ(res.diagnostics.count("parse.invalid-value"), 1u);
  EXPECT_TRUE(any_location_contains(res.diagnostics, "line 3"));
}

TEST(CurveCsvErrors, LintsWellFormedSamples) {
  const CurveReadResult res = read_curve_points_csv("1,5\n2,3\n");
  EXPECT_TRUE(res.points.empty());  // not ok() => no partial samples
  EXPECT_TRUE(res.diagnostics.has("curve.non-monotone"));
}

TEST(CurveCsvErrors, CleanInputParsesWithCommentsAndHeader) {
  const CurveReadResult res = read_curve_points_csv(
      "time,value\n# measured on rig 3\n\n1,2\n4, 7\n");
  EXPECT_TRUE(res.diagnostics.clean());
  ASSERT_EQ(res.points.size(), 2u);
  EXPECT_EQ(res.points[0], (Step{Time(1), Work(2)}));
  EXPECT_EQ(res.points[1], (Step{Time(4), Work(7)}));
}

}  // namespace
}  // namespace strt
