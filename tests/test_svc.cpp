// strt::svc -- the sharded batch analysis service and unified request
// API.
//
// Pins the service's core contracts: outcomes are bit-identical to
// one-shot run_request() on a private workspace for every analysis kind
// and for every shard count, the bounded admission rings exert
// backpressure, wall-clock deadlines and CancelTokens stop requests
// before and during a run, fingerprint batching attributes the workspace
// cache delta to every member of a batch, same-fingerprint requests land
// on one shard (so batching survives sharding), and concurrent
// submitters racing drain() and destruction never lose or hang a
// request.  Tests that depend on exact queue capacities pin shards
// explicitly, so the suite holds under any STRT_SHARDS (the CI matrix
// runs it with STRT_SHARDS=4).

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <future>
#include <sstream>
#include <string>
#include <thread>
#include <variant>
#include <vector>

#include "engine/workspace.hpp"
#include "graph/drt.hpp"
#include "model/generator.hpp"
#include "obs/counters.hpp"
#include "obs/trace.hpp"
#include "svc/api.hpp"
#include "svc/request_stream.hpp"
#include "svc/service.hpp"

namespace strt::svc {
namespace {

std::vector<DrtTask> random_set(std::uint64_t seed, std::size_t set_size,
                                double total_util) {
  Rng rng = Rng::split(seed, 0);
  DrtGenParams params;
  params.min_vertices = 2;
  params.max_vertices = 4;
  params.min_separation = Time(6);
  params.max_separation = Time(24);
  auto gen = random_drt_set(rng, set_size, total_util, params);
  std::vector<DrtTask> tasks;
  for (auto& g : gen) tasks.push_back(std::move(g.task));
  return tasks;
}

AnalysisRequest request_of_kind(AnalysisKind kind, std::uint64_t id,
                                std::uint64_t seed) {
  AnalysisRequest req;
  req.id = id;
  req.kind = kind;
  req.supply = Supply::tdma(Time(7), Time(10));
  const bool single = kind == AnalysisKind::kStructural ||
                      kind == AnalysisKind::kSensitivity;
  req.tasks = random_set(seed, single ? 1 : 3, single ? 0.3 : 0.6);
  return req;
}

/// True when `ancestor_id` is on `span`'s parent chain.  With STRT_OBS=1
/// the obs::Span phase markers mirror into request traces (e.g. a
/// "svc.request" span slots in between "request" and "validate"), so
/// structural assertions walk ancestry instead of direct parenthood.
bool has_ancestor(const obs::RequestTrace& trace,
                  const obs::TraceSpanRecord& span,
                  std::uint64_t ancestor_id) {
  std::uint64_t parent = span.parent;
  while (parent != 0) {
    if (parent == ancestor_id) return true;
    const obs::TraceSpanRecord* next = nullptr;
    for (const obs::TraceSpanRecord& s : trace.spans) {
      if (s.id == parent) {
        next = &s;
        break;
      }
    }
    if (next == nullptr) return false;
    parent = next->parent;
  }
  return false;
}

/// Field-by-field equality of two outcomes (the result variant included).
void expect_same_outcome(const AnalysisOutcome& a, const AnalysisOutcome& b) {
  EXPECT_EQ(a.id, b.id);
  EXPECT_EQ(a.kind, b.kind);
  EXPECT_EQ(a.status, b.status);
  EXPECT_EQ(a.error, b.error);
  EXPECT_EQ(a.diagnostics.to_json(), b.diagnostics.to_json());
  ASSERT_EQ(a.result.index(), b.result.index());
  if (const StructuralResult* sa = a.structural()) {
    const StructuralResult* sb = b.structural();
    EXPECT_EQ(sa->delay, sb->delay);
    EXPECT_EQ(sa->backlog, sb->backlog);
    EXPECT_EQ(sa->busy_window, sb->busy_window);
    EXPECT_EQ(sa->vertex_delays, sb->vertex_delays);
    EXPECT_EQ(sa->meets_vertex_deadlines, sb->meets_vertex_deadlines);
    EXPECT_EQ(sa->stats.generated, sb->stats.generated);
    EXPECT_EQ(sa->stats.expanded, sb->stats.expanded);
  }
  if (const FpResult* fa = a.fp()) {
    const FpResult* fb = b.fp();
    EXPECT_EQ(fa->overloaded, fb->overloaded);
    EXPECT_EQ(fa->system_busy_window, fb->system_busy_window);
    ASSERT_EQ(fa->tasks.size(), fb->tasks.size());
    for (std::size_t i = 0; i < fa->tasks.size(); ++i) {
      EXPECT_EQ(fa->tasks[i].structural_delay,
                fb->tasks[i].structural_delay);
      EXPECT_EQ(fa->tasks[i].curve_delay, fb->tasks[i].curve_delay);
      EXPECT_EQ(fa->tasks[i].busy_window, fb->tasks[i].busy_window);
    }
  }
  if (const EdfResult* ea = a.edf()) {
    const EdfResult* eb = b.edf();
    EXPECT_EQ(ea->schedulable, eb->schedulable);
    EXPECT_EQ(ea->overloaded, eb->overloaded);
    EXPECT_EQ(ea->margin, eb->margin);
    EXPECT_EQ(ea->horizon_checked, eb->horizon_checked);
  }
  if (const JointFpResult* ja = a.joint_fp()) {
    const JointFpResult* jb = b.joint_fp();
    EXPECT_EQ(ja->overloaded, jb->overloaded);
    EXPECT_EQ(ja->joint_delay, jb->joint_delay);
    EXPECT_EQ(ja->rbf_delay, jb->rbf_delay);
    EXPECT_EQ(ja->paths_analyzed, jb->paths_analyzed);
  }
  if (const SensitivityReport* ra = a.sensitivity()) {
    const SensitivityReport* rb = b.sensitivity();
    EXPECT_EQ(ra->feasible, rb->feasible);
    EXPECT_EQ(ra->wcet_slack, rb->wcet_slack);
    EXPECT_EQ(ra->separation_slack, rb->separation_slack);
  }
  if (const AudsleyResult* ua = a.audsley()) {
    const AudsleyResult* ub = b.audsley();
    EXPECT_EQ(ua->feasible, ub->feasible);
    EXPECT_EQ(ua->order, ub->order);
    EXPECT_EQ(ua->tests_run, ub->tests_run);
  }
}

TEST(SvcApi, KindNamesRoundTrip) {
  for (const AnalysisKind k : kAllAnalysisKinds) {
    const auto back = kind_from_name(kind_name(k));
    ASSERT_TRUE(back.has_value());
    EXPECT_EQ(*back, k);
  }
  EXPECT_FALSE(kind_from_name("holistic").has_value());
}

TEST(SvcApi, InvalidArityIsRejectedWithoutRunning) {
  AnalysisRequest req = request_of_kind(AnalysisKind::kStructural, 1, 10);
  req.tasks.push_back(req.tasks[0]);  // structural takes exactly one task
  const AnalysisOutcome out = run_request(req);
  EXPECT_EQ(out.status, OutcomeStatus::kInvalid);
  EXPECT_TRUE(std::holds_alternative<std::monostate>(out.result));
  EXPECT_FALSE(out.error.empty());
}

TEST(SvcApi, LintErrorsYieldInvalidWithDiagnostics) {
  DrtBuilder b("bad");
  const VertexId v = b.add_vertex("A", Work(9), Time(4));  // wcet > deadline
  b.add_edge(v, v, Time(10));
  AnalysisRequest req;
  req.kind = AnalysisKind::kStructural;
  req.tasks = {std::move(b).build()};
  const AnalysisOutcome out = run_request(req);
  EXPECT_EQ(out.status, OutcomeStatus::kInvalid);
  EXPECT_TRUE(out.diagnostics.has("drt.wcet-exceeds-deadline"));
}

TEST(SvcService, OutcomesBitIdenticalToOneShotAcrossKinds) {
  ServiceOptions sopts;
  sopts.max_batch = 16;
  Service service(sopts);
  std::vector<AnalysisRequest> reqs;
  std::uint64_t id = 0;
  for (int round = 0; round < 3; ++round) {
    for (const AnalysisKind k : kAllAnalysisKinds) {
      ++id;
      reqs.push_back(request_of_kind(k, id, 7000 + 13 * id));
    }
  }
  const std::vector<AnalysisOutcome> served = service.run_all(reqs);
  ASSERT_EQ(served.size(), reqs.size());
  for (std::size_t i = 0; i < reqs.size(); ++i) {
    engine::Workspace cold;
    const AnalysisOutcome direct = run_request(cold, reqs[i]);
    EXPECT_EQ(served[i].id, reqs[i].id);
    expect_same_outcome(served[i], direct);
  }
}

TEST(SvcService, BackpressureShedsLoadWhenQueueIsFull) {
  ServiceOptions sopts;
  sopts.queue_capacity = 2;
  sopts.shards = 1;  // the capacity bound below is per shard
  sopts.start_paused = true;
  Service service(sopts);
  const AnalysisRequest req =
      request_of_kind(AnalysisKind::kStructural, 9, 42);

  auto f1 = service.try_submit(req);
  auto f2 = service.try_submit(req);
  ASSERT_TRUE(f1.has_value());
  ASSERT_TRUE(f2.has_value());
  // Queue full and dispatch paused: the third submission is shed.
  auto f3 = service.try_submit(req);
  EXPECT_FALSE(f3.has_value());
  EXPECT_EQ(service.stats().rejected, 1u);
  EXPECT_EQ(service.stats().queue_depth, 2u);

  service.resume();
  EXPECT_EQ(f1->get().status, OutcomeStatus::kOk);
  EXPECT_EQ(f2->get().status, OutcomeStatus::kOk);
  service.drain();
  EXPECT_EQ(service.stats().served, 2u);
  EXPECT_EQ(service.stats().submitted, 2u);
}

TEST(SvcService, DeadlineExpiresInQueue) {
  ServiceOptions sopts;
  sopts.start_paused = true;
  Service service(sopts);
  AnalysisRequest req = request_of_kind(AnalysisKind::kStructural, 5, 77);
  req.deadline = std::chrono::milliseconds(1);
  auto fut = service.submit(std::move(req));
  // Hold the request in the paused queue until its budget is gone.
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  service.resume();
  const AnalysisOutcome out = fut.get();
  EXPECT_EQ(out.status, OutcomeStatus::kDeadlineExpired);
  EXPECT_TRUE(std::holds_alternative<std::monostate>(out.result));
  service.drain();
  EXPECT_EQ(service.stats().deadline_expired, 1u);
}

TEST(SvcApi, CancelTokenStopsARunMidExploration) {
  AnalysisRequest req = request_of_kind(AnalysisKind::kStructural, 6, 91);
  CancelToken token;
  req.cancel = token;
  req.common.progress_every = 1;  // check the token at every expansion
  std::atomic<std::uint64_t> calls{0};
  req.common.on_progress = [&](const ExploreProgress&) {
    if (++calls >= 3) token.cancel();
    return true;
  };
  const AnalysisOutcome out = run_request(req);
  EXPECT_EQ(out.status, OutcomeStatus::kCancelled);
  EXPECT_GE(calls.load(), 3u);
}

TEST(SvcApi, PreCancelledTokenSkipsTheRun) {
  AnalysisRequest req = request_of_kind(AnalysisKind::kEdf, 7, 55);
  CancelToken token;
  token.cancel();
  req.cancel = token;
  const AnalysisOutcome out = run_request(req);
  EXPECT_EQ(out.status, OutcomeStatus::kCancelled);
  EXPECT_TRUE(std::holds_alternative<std::monostate>(out.result));
}

TEST(SvcService, FingerprintBatchingSharesTheCacheDelta) {
  ServiceOptions sopts;
  sopts.start_paused = true;
  sopts.max_batch = 8;
  Service service(sopts);

  // Four requests over one task system: same fingerprint, one batch.
  const AnalysisRequest seed =
      request_of_kind(AnalysisKind::kStructural, 0, 4242);
  std::vector<std::future<AnalysisOutcome>> futs;
  for (std::uint64_t id = 1; id <= 4; ++id) {
    AnalysisRequest req = seed;
    req.id = id;
    futs.push_back(service.submit(std::move(req)));
  }
  service.resume();
  service.drain();

  std::vector<AnalysisOutcome> outs;
  for (auto& f : futs) outs.push_back(f.get());
  const std::uint64_t key = outs[0].stats.batch_key;
  for (const AnalysisOutcome& out : outs) {
    EXPECT_EQ(out.status, OutcomeStatus::kOk);
    EXPECT_EQ(out.stats.batch_key, key);
    EXPECT_EQ(out.stats.batch_size, 4u);
    // The batch's cache delta is attributed to every member: the leader
    // warmed the memos, so the batch as a whole must have hit the cache.
    EXPECT_GT(out.stats.cache_hits, 0u);
  }
  const ServiceStats stats = service.stats();
  EXPECT_EQ(stats.batches, 1u);
  EXPECT_EQ(stats.batched_requests, 4u);

  // The shared workspace saw real hits too (service-wide numbers).
  EXPECT_GT(service.workspace().stats().hits, 0u);
}

TEST(SvcService, DistinctFingerprintsDoNotBatch) {
  ServiceOptions sopts;
  sopts.start_paused = true;
  Service service(sopts);
  std::vector<std::future<AnalysisOutcome>> futs;
  for (std::uint64_t id = 1; id <= 3; ++id) {
    futs.push_back(service.submit(
        request_of_kind(AnalysisKind::kStructural, id, 100 + id)));
  }
  service.resume();
  service.drain();
  for (auto& f : futs) {
    const AnalysisOutcome out = f.get();
    EXPECT_EQ(out.status, OutcomeStatus::kOk);
    EXPECT_EQ(out.stats.batch_size, 1u);
  }
  EXPECT_EQ(service.stats().batches, 3u);
  EXPECT_EQ(service.stats().batched_requests, 0u);
}

TEST(SvcService, ShardedOutcomesBitIdenticalToSingleShard) {
  std::vector<AnalysisRequest> reqs;
  std::uint64_t id = 0;
  for (int round = 0; round < 2; ++round) {
    for (const AnalysisKind k : kAllAnalysisKinds) {
      ++id;
      reqs.push_back(request_of_kind(k, id, 5000 + 11 * id));
    }
  }

  std::vector<AnalysisOutcome> one;
  {
    ServiceOptions sopts;
    sopts.shards = 1;
    Service service(sopts);
    one = service.run_all(reqs);
  }
  std::vector<AnalysisOutcome> four;
  {
    ServiceOptions sopts;
    sopts.shards = 4;
    Service service(sopts);
    EXPECT_EQ(service.shard_count(), 4u);
    four = service.run_all(reqs);
    // The per-shard rollup covers every shard and sums to the totals.
    const ServiceStats stats = service.stats();
    ASSERT_EQ(stats.per_shard.size(), 4u);
    std::uint64_t served = 0;
    for (const ShardStats& sh : stats.per_shard) served += sh.served;
    EXPECT_EQ(served, stats.served);
    EXPECT_EQ(stats.served, reqs.size());
  }
  ASSERT_EQ(one.size(), four.size());
  for (std::size_t i = 0; i < one.size(); ++i) {
    expect_same_outcome(one[i], four[i]);
  }
}

TEST(SvcService, SameFingerprintLandsOnOneShardAndStillBatches) {
  ServiceOptions sopts;
  sopts.shards = 4;
  sopts.start_paused = true;
  sopts.max_batch = 8;
  Service service(sopts);

  const AnalysisRequest seed =
      request_of_kind(AnalysisKind::kStructural, 0, 6161);
  std::vector<std::future<AnalysisOutcome>> futs;
  for (std::uint64_t id = 1; id <= 4; ++id) {
    AnalysisRequest req = seed;
    req.id = id;
    futs.push_back(service.submit(std::move(req)));
  }
  service.resume();
  service.drain();
  for (auto& f : futs) {
    const AnalysisOutcome out = f.get();
    EXPECT_EQ(out.status, OutcomeStatus::kOk);
    // All four share one fingerprint, so routing put them on one shard
    // and that shard's round batched them.
    EXPECT_EQ(out.stats.batch_size, 4u);
  }
  const ServiceStats stats = service.stats();
  std::size_t owning_shards = 0;
  for (const ShardStats& sh : stats.per_shard) {
    if (sh.submitted > 0) {
      ++owning_shards;
      EXPECT_EQ(sh.submitted, 4u);
      EXPECT_EQ(sh.served, 4u);
    }
  }
  EXPECT_EQ(owning_shards, 1u);
  EXPECT_EQ(stats.batched_requests, 4u);
}

TEST(SvcService, DistinctFingerprintsSpreadRoundRobinAcrossShards) {
  ServiceOptions sopts;
  sopts.shards = 4;
  Service service(sopts);
  std::vector<AnalysisRequest> reqs;
  for (std::uint64_t id = 1; id <= 8; ++id) {
    reqs.push_back(request_of_kind(AnalysisKind::kStructural, id, 200 + id));
  }
  const std::vector<AnalysisOutcome> outs = service.run_all(reqs);
  for (const AnalysisOutcome& out : outs) {
    EXPECT_EQ(out.status, OutcomeStatus::kOk);
  }
  // Eight distinct fingerprints, round-robin assignment: two per shard
  // (a hash-modulo split could leave shards idle; assignment order must
  // not).
  const ServiceStats stats = service.stats();
  ASSERT_EQ(stats.per_shard.size(), 4u);
  for (const ShardStats& sh : stats.per_shard) {
    EXPECT_EQ(sh.submitted, 2u);
    EXPECT_EQ(sh.served, 2u);
  }
}

TEST(SvcService, ShedAndQueueDepthAreVisibleInTheRegistry) {
  obs::Registry::global().reset();
  obs::set_enabled(true);
  {
    ServiceOptions sopts;
    sopts.queue_capacity = 2;
    sopts.shards = 1;
    sopts.start_paused = true;
    Service service(sopts);
    const AnalysisRequest req =
        request_of_kind(AnalysisKind::kStructural, 1, 31);
    auto f1 = service.try_submit(req);
    auto f2 = service.try_submit(req);
    auto f3 = service.try_submit(req);  // shed: full + paused
    ASSERT_TRUE(f1.has_value());
    ASSERT_TRUE(f2.has_value());
    EXPECT_FALSE(f3.has_value());
    service.resume();
    service.drain();
  }
  std::uint64_t shed = 0;
  for (const obs::CounterSample& c : obs::Registry::global().counters()) {
    if (c.name == "svc.shed") shed = c.value;
  }
  EXPECT_EQ(shed, 1u);
  // The depth gauge was sampled at admission while both requests were
  // queued behind the pause; its high-water mark caught that.
  std::int64_t depth_max = -1;
  bool saw_shard_gauge = false;
  for (const obs::GaugeSample& g : obs::Registry::global().gauges()) {
    if (g.name == "svc.queue_depth") depth_max = g.max_value;
    if (g.name == "svc.shard_queue_depth{shard=\"0\"}") {
      saw_shard_gauge = true;
    }
  }
  EXPECT_GE(depth_max, 2);
  EXPECT_TRUE(saw_shard_gauge);
  obs::set_enabled(false);
  obs::Registry::global().reset();
}

TEST(SvcService, StressConcurrentSubmittersSurviveDrainAndShutdown) {
  constexpr std::size_t kThreads = 4;
  constexpr std::size_t kPerThread = 12;
  ServiceOptions sopts;
  sopts.shards = 4;
  sopts.queue_capacity = 16;
  sopts.max_batch = 8;

  // Four distinct systems, so routing and batching both engage.
  std::vector<AnalysisRequest> protos;
  for (std::uint64_t i = 0; i < 4; ++i) {
    protos.push_back(
        request_of_kind(AnalysisKind::kStructural, i, 9000 + i));
  }

  std::vector<std::vector<std::future<AnalysisOutcome>>> per_thread(
      kThreads);
  std::atomic<std::uint64_t> shed{0};
  {
    Service service(sopts);
    std::vector<std::thread> threads;
    threads.reserve(kThreads);
    for (std::size_t t = 0; t < kThreads; ++t) {
      threads.emplace_back([&, t] {
        for (std::size_t i = 0; i < kPerThread; ++i) {
          AnalysisRequest req = protos[(t + i) % protos.size()];
          req.id = 1 + t * kPerThread + i;
          if (i % 3 == 0) {
            if (auto f = service.try_submit(std::move(req))) {
              per_thread[t].push_back(std::move(*f));
            } else {
              shed.fetch_add(1);
            }
          } else {
            per_thread[t].push_back(service.submit(std::move(req)));
          }
        }
      });
    }
    // Drain while the submitters are still hammering admission: must not
    // deadlock, and must still see a momentarily idle service.
    service.drain();
    for (std::thread& th : threads) th.join();
    service.drain();

    std::uint64_t admitted = 0;
    for (const auto& futs : per_thread) admitted += futs.size();
    const ServiceStats stats = service.stats();
    EXPECT_EQ(stats.submitted, admitted);
    EXPECT_EQ(stats.served, admitted);
    EXPECT_EQ(stats.rejected, shed.load());
  }
  // Every admitted request resolved kOk -- none lost across the races.
  for (auto& futs : per_thread) {
    for (auto& f : futs) {
      EXPECT_EQ(f.get().status, OutcomeStatus::kOk);
    }
  }

  // Destruction with work still queued: a paused service is destroyed
  // with full rings; the destructor serves everything before joining.
  std::vector<std::future<AnalysisOutcome>> queued;
  {
    ServiceOptions paused = sopts;
    paused.start_paused = true;
    Service service(paused);
    for (std::uint64_t i = 0; i < 8; ++i) {
      AnalysisRequest req = protos[i % protos.size()];
      req.id = 100 + i;
      queued.push_back(service.submit(std::move(req)));
    }
  }
  for (auto& f : queued) {
    EXPECT_EQ(f.get().status, OutcomeStatus::kOk);
  }
}

TEST(SvcApi, OutcomeCarriesQueueValidateRunSpans) {
  const AnalysisRequest req =
      request_of_kind(AnalysisKind::kStructural, 9, 555);
  const AnalysisOutcome out = run_request(req);
  ASSERT_EQ(out.status, OutcomeStatus::kOk);

  ASSERT_FALSE(out.trace.empty());
  EXPECT_NE(out.trace.trace_id, 0u);
  const obs::TraceSpanRecord* queue = out.trace.find("queue");
  const obs::TraceSpanRecord* request = out.trace.find("request");
  const obs::TraceSpanRecord* validate = out.trace.find("validate");
  const obs::TraceSpanRecord* run = out.trace.find("run");
  ASSERT_NE(queue, nullptr);
  ASSERT_NE(request, nullptr);
  ASSERT_NE(validate, nullptr);
  ASSERT_NE(run, nullptr);

  // queue and request are timeline roots; validate/run nest under the
  // request span, in that order.
  EXPECT_EQ(queue->parent, 0u);
  EXPECT_EQ(request->parent, 0u);
  EXPECT_TRUE(has_ancestor(out.trace, *validate, request->id));
  EXPECT_TRUE(has_ancestor(out.trace, *run, request->id));
  EXPECT_LE(validate->start_us, run->start_us);

  // One-shot runs never queue: the span is empty and so is the stat.
  EXPECT_EQ(queue->dur_us, 0);
  EXPECT_EQ(out.stats.queue_us, 0);
  EXPECT_GE(out.stats.run_us, 0);
}

TEST(SvcApi, FrontGateOutcomesStillCarryTheSpanTree) {
  AnalysisRequest req = request_of_kind(AnalysisKind::kStructural, 1, 10);
  req.tasks.push_back(req.tasks[0]);  // arity violation: kInvalid
  const AnalysisOutcome out = run_request(req);
  ASSERT_EQ(out.status, OutcomeStatus::kInvalid);
  EXPECT_NE(out.trace.find("queue"), nullptr);
  EXPECT_NE(out.trace.find("validate"), nullptr);
  EXPECT_NE(out.trace.find("run"), nullptr);
}

TEST(SvcService, ServedOutcomesMeasureQueueWaitAndMarkTheLeader) {
  ServiceOptions sopts;
  sopts.start_paused = true;
  sopts.max_batch = 8;
  Service service(sopts);

  const AnalysisRequest seed =
      request_of_kind(AnalysisKind::kStructural, 0, 4242);
  std::vector<std::future<AnalysisOutcome>> futs;
  for (std::uint64_t id = 1; id <= 3; ++id) {
    AnalysisRequest req = seed;
    req.id = id;
    futs.push_back(service.submit(std::move(req)));
  }
  service.resume();
  service.drain();

  bool saw_leader = false;
  for (auto& f : futs) {
    const AnalysisOutcome out = f.get();
    ASSERT_EQ(out.status, OutcomeStatus::kOk);
    const obs::TraceSpanRecord* queue = out.trace.find("queue");
    ASSERT_NE(queue, nullptr);
    // Served requests waited from admission to dispatch; the span and
    // the stat agree.
    EXPECT_GE(out.stats.queue_us, 0);
    EXPECT_EQ(queue->dur_us, out.stats.queue_us);
    if (const obs::TraceSpanRecord* warm = out.trace.find("memo.warm")) {
      saw_leader = true;
      const obs::TraceSpanRecord* run = out.trace.find("run");
      ASSERT_NE(run, nullptr);
      EXPECT_EQ(warm->parent, run->id);
    }
  }
  // Exactly one member of the batch is the leader; its trace carries the
  // memo-warm phase.
  EXPECT_TRUE(saw_leader);
}

TEST(SvcService, BitIdenticalWithTelemetryOnAndOff) {
  std::vector<AnalysisRequest> reqs;
  std::uint64_t id = 0;
  for (const AnalysisKind k : kAllAnalysisKinds) {
    ++id;
    reqs.push_back(request_of_kind(k, id, 300 + 17 * id));
  }

  // Baseline: telemetry off, observability registry off.
  std::vector<AnalysisOutcome> plain;
  {
    Service service{{}};
    plain = service.run_all(reqs);
  }

  // Telemetry on: registry enabled and a sink attached, like
  // strt_serve --telemetry-dir.
  const std::filesystem::path dir =
      std::filesystem::temp_directory_path() / "strt_test_svc_telemetry";
  std::filesystem::remove_all(dir);
  obs::set_enabled(true);
  std::vector<AnalysisOutcome> traced;
  {
    ServiceOptions sopts;
    sopts.telemetry_dir = dir.string();
    Service service(sopts);
    traced = service.run_all(reqs);
  }
  obs::set_enabled(false);
  obs::Registry::global().reset();

  // Telemetry must never move an answer.
  ASSERT_EQ(plain.size(), traced.size());
  for (std::size_t i = 0; i < plain.size(); ++i) {
    expect_same_outcome(plain[i], traced[i]);
  }

  // The sink wrote all three artifacts; the trace file round-trips and
  // covers every request.
  EXPECT_TRUE(std::filesystem::exists(dir / "metrics.prom"));
  EXPECT_TRUE(std::filesystem::exists(dir / "events.jsonl"));
  ASSERT_TRUE(std::filesystem::exists(dir / "trace.json"));
  std::ifstream in(dir / "trace.json");
  std::stringstream buf;
  buf << in.rdbuf();
  const std::vector<obs::RequestTrace> traces =
      obs::parse_chrome_trace(buf.str());
  EXPECT_GE(traces.size(), reqs.size());
  std::filesystem::remove_all(dir);
}

TEST(SvcStream, JsonlRequestRoundTrips) {
  const RequestParse p = parse_request_json(
      R"({"id": 3, "kind": "structural", "supply": "tdma slot 3 cycle 8",)"
      R"( "task": "task t\nvertex A wcet 2 deadline 10\nedge A A sep 10",)"
      R"( "max_states": 1234, "deadline_ms": 250, "want_witness": true})",
      1);
  ASSERT_TRUE(p.diagnostics.ok()) << p.diagnostics.to_json();
  ASSERT_TRUE(p.request.has_value());
  EXPECT_EQ(p.request->id, 3u);
  EXPECT_EQ(p.request->kind, AnalysisKind::kStructural);
  EXPECT_EQ(p.request->supply.describe(),
            Supply::tdma(Time(3), Time(8)).describe());
  EXPECT_EQ(p.request->common.max_states, 1234u);
  EXPECT_TRUE(p.request->want_witness);
  ASSERT_TRUE(p.request->deadline.has_value());
  EXPECT_EQ(p.request->deadline->count(), 250);

  const AnalysisOutcome out = run_request(*p.request);
  EXPECT_EQ(out.status, OutcomeStatus::kOk);
  ASSERT_NE(out.structural(), nullptr);
}

TEST(SvcStream, MalformedLinesCollectDiagnostics) {
  EXPECT_TRUE(
      parse_request_json("{not json", 1).diagnostics.has("req.bad-field"));
  EXPECT_TRUE(parse_request_json(R"({"kind": "nope", "task": "task t"})", 2)
                  .diagnostics.has("req.unknown-kind"));
  EXPECT_TRUE(parse_request_json(R"({"kind": "edf"})", 3)
                  .diagnostics.has("req.missing-task"));
  // Task text that fails its own parse surfaces the nested diagnostics.
  const RequestParse p =
      parse_request_json(R"({"kind": "structural", "task": "bogus"})", 4);
  EXPECT_FALSE(p.request.has_value());
  EXPECT_FALSE(p.diagnostics.ok());
}

TEST(SvcStream, StreamReaderSkipsCommentsAndCountsLines) {
  std::istringstream in(
      "# request stream\n"
      "\n"
      R"({"id": 1, "kind": "edf", "tasks": ["task a\nvertex A wcet 1 )"
      R"(deadline 8\nedge A A sep 8"]})"
      "\n"
      "{broken\n");
  const std::vector<RequestParse> reqs =
      read_request_stream(in, StreamFormat::kJsonl);
  ASSERT_EQ(reqs.size(), 2u);
  EXPECT_TRUE(reqs[0].request.has_value());
  EXPECT_FALSE(reqs[1].request.has_value());
  // Diagnostics carry the physical line number (line 4 is the broken one).
  ASSERT_FALSE(reqs[1].diagnostics.diagnostics().empty());
  EXPECT_EQ(reqs[1].diagnostics.diagnostics()[0].location, "line 4");
}

}  // namespace
}  // namespace strt::svc
