// strt::exec -- pool mechanics: full coverage of the iteration space,
// result ordering, nesting, exception propagation, and thread-count
// control.

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <thread>
#include <vector>

#include "exec/exec.hpp"

namespace strt {
namespace {

class ExecTest : public ::testing::Test {
 protected:
  void TearDown() override { exec::set_thread_count(0); }
};

TEST_F(ExecTest, CoversEveryIndexExactlyOnce) {
  for (const std::size_t threads : {std::size_t{1}, std::size_t{4}}) {
    exec::set_thread_count(threads);
    for (const std::size_t n :
         {std::size_t{0}, std::size_t{1}, std::size_t{7}, std::size_t{1000}}) {
      std::vector<std::atomic<int>> hits(n);
      exec::parallel_for(n, [&](std::size_t i) {
        hits[i].fetch_add(1, std::memory_order_relaxed);
      });
      for (std::size_t i = 0; i < n; ++i) {
        EXPECT_EQ(hits[i].load(), 1) << "threads " << threads << " n " << n
                                     << " index " << i;
      }
    }
  }
}

TEST_F(ExecTest, MapPreservesIndexOrder) {
  exec::set_thread_count(4);
  const auto out =
      exec::parallel_map(500, [](std::size_t i) { return i * i; });
  ASSERT_EQ(out.size(), 500u);
  for (std::size_t i = 0; i < out.size(); ++i) EXPECT_EQ(out[i], i * i);
}

TEST_F(ExecTest, MapMatchesSerialBitForBit) {
  auto work = [](std::size_t i) {
    // Index-dependent but schedule-independent pseudo-computation.
    std::uint64_t x = i * 0x9E3779B97F4A7C15ULL + 1;
    for (int r = 0; r < 50; ++r) x ^= (x << 13), x ^= (x >> 7);
    return x;
  };
  exec::set_thread_count(1);
  const auto serial = exec::parallel_map(300, work);
  exec::set_thread_count(4);
  const auto parallel = exec::parallel_map(300, work);
  EXPECT_EQ(serial, parallel);
}

TEST_F(ExecTest, NestedLoopsRunInline) {
  exec::set_thread_count(4);
  std::atomic<int> total{0};
  exec::parallel_for(8, [&](std::size_t) {
    EXPECT_TRUE(exec::inside_parallel_region());
    // Must not deadlock: the nested loop runs serially on this thread.
    exec::parallel_for(5, [&](std::size_t) {
      total.fetch_add(1, std::memory_order_relaxed);
    });
  });
  EXPECT_EQ(total.load(), 40);
  EXPECT_FALSE(exec::inside_parallel_region());
}

TEST_F(ExecTest, FirstExceptionPropagatesToCaller) {
  exec::set_thread_count(4);
  std::atomic<int> executed{0};
  try {
    exec::parallel_for(200, [&](std::size_t i) {
      if (i == 17) throw std::runtime_error("boom");
      executed.fetch_add(1, std::memory_order_relaxed);
    });
    FAIL() << "expected the iteration's exception";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "boom");
  }
  // The pool stays usable afterwards.
  std::atomic<int> after{0};
  exec::parallel_for(
      50, [&](std::size_t) { after.fetch_add(1, std::memory_order_relaxed); });
  EXPECT_EQ(after.load(), 50);
}

TEST_F(ExecTest, ThreadCountControl) {
  exec::set_thread_count(3);
  EXPECT_EQ(exec::thread_count(), 3u);
  exec::set_thread_count(1);
  EXPECT_EQ(exec::thread_count(), 1u);
  // 1 = fully serial: the loop runs on the calling thread.
  const auto caller = std::this_thread::get_id();
  exec::parallel_for(4, [&](std::size_t) {
    EXPECT_EQ(std::this_thread::get_id(), caller);
  });
  exec::set_thread_count(0);  // reset to env/hardware default
  EXPECT_GE(exec::thread_count(), 1u);
}

TEST_F(ExecTest, ManySmallRunsBackToBack) {
  exec::set_thread_count(4);
  std::uint64_t sum = 0;
  for (int round = 0; round < 200; ++round) {
    const auto part = exec::parallel_map(
        7, [&](std::size_t i) { return static_cast<std::uint64_t>(i); });
    sum += std::accumulate(part.begin(), part.end(), std::uint64_t{0});
  }
  EXPECT_EQ(sum, 200u * 21u);
}

}  // namespace
}  // namespace strt
