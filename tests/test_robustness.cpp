// Failure-injection and robustness tests: malformed inputs must raise
// clean exceptions (never crash or silently mis-parse), and degenerate
// task shapes must be analyzed correctly.

#include <gtest/gtest.h>

#include "core/curve_based.hpp"
#include "core/structural.hpp"
#include "graph/cycle_ratio.hpp"
#include "graph/workload.hpp"
#include "io/parse.hpp"
#include "io/trace_io.hpp"
#include "sim/trace.hpp"
#include "testutil.hpp"

namespace strt {
namespace {

TEST(TraceIo, RoundTrip) {
  const Trace trace{SimJob{Time(0), Work(4), 0}, SimJob{Time(3), Work(1), 1},
                    SimJob{Time(3), Work(2), 0}};
  const Trace parsed = parse_trace(serialize_trace(trace));
  ASSERT_EQ(parsed.size(), trace.size());
  for (std::size_t i = 0; i < trace.size(); ++i) {
    EXPECT_EQ(parsed[i].release, trace[i].release);
    EXPECT_EQ(parsed[i].wcet, trace[i].wcet);
    EXPECT_EQ(parsed[i].vertex, trace[i].vertex);
  }
}

TEST(TraceIo, AcceptsCommentsAndRejectsGarbage) {
  const Trace t = parse_trace("# header\n\njob release 5 wcet 2 vertex 0\n");
  ASSERT_EQ(t.size(), 1u);
  EXPECT_EQ(t[0].release, Time(5));

  EXPECT_THROW((void)parse_trace("job release x wcet 2 vertex 0\n"),
               std::invalid_argument);
  EXPECT_THROW((void)parse_trace("job release 5 wcet 2\n"),
               std::invalid_argument);
  EXPECT_THROW((void)parse_trace("jub release 5 wcet 2 vertex 0\n"),
               std::invalid_argument);
  EXPECT_THROW(
      (void)parse_trace(
          "job release 5 wcet 2 vertex 0\njob release 3 wcet 1 vertex 0\n"),
      std::invalid_argument);  // decreasing releases
  EXPECT_THROW((void)parse_trace("job release -1 wcet 2 vertex 0\n"),
               std::invalid_argument);
}

TEST(ParserFuzz, RandomGarbageNeverCrashes) {
  Rng rng(13);
  const char alphabet[] =
      "task vertex edge wcet deadline sep 0123456789 \t#\nabc_-/";
  for (int trial = 0; trial < 300; ++trial) {
    std::string text;
    const int len = static_cast<int>(rng.uniform_int(0, 120));
    for (int i = 0; i < len; ++i) {
      text += alphabet[rng.pick_index(sizeof(alphabet) - 1)];
    }
    try {
      const DrtTask task = parse_task(text);
      // If it parsed, it must be a valid task.
      EXPECT_GE(task.vertex_count(), 1u);
    } catch (const std::invalid_argument&) {
      // expected for garbage
    }
    try {
      (void)parse_supply(text);
    } catch (const std::invalid_argument&) {
    }
    try {
      (void)parse_trace(text);
    } catch (const std::invalid_argument&) {
    }
  }
}

TEST(DegenerateShapes, AcyclicTaskHasFiniteWorkloadAndDelay) {
  // A one-shot chain: no cycle, utilization undefined, busy window still
  // closes, every analysis finite.
  DrtBuilder b("oneshot");
  const VertexId a = b.add_vertex("A", Work(5), Time(20));
  const VertexId c = b.add_vertex("B", Work(3), Time(10));
  b.add_edge(a, c, Time(4));
  const DrtTask task = std::move(b).build();
  EXPECT_FALSE(utilization(task).has_value());

  const Staircase f = rbf(task, Time(50));
  EXPECT_EQ(f.value(Time(50)), Work(8));  // total work is bounded

  const Supply supply = Supply::tdma(Time(1), Time(4));
  const StructuralResult st = structural_delay(test::workspace(), task, supply);
  ASSERT_FALSE(st.delay.is_unbounded());
  const CurveResult cv = curve_delay(test::workspace(), task, supply);
  EXPECT_EQ(st.delay, cv.delay);
}

TEST(DegenerateShapes, SingleVertexNoEdges) {
  DrtBuilder b("solo");
  b.add_vertex("only", Work(7), Time(30));
  const DrtTask task = std::move(b).build();
  EXPECT_FALSE(task.is_cyclic());
  const StructuralResult st =
      structural_delay(test::workspace(), task, Supply::dedicated(1));
  EXPECT_EQ(st.delay, Time(7));
  EXPECT_EQ(st.backlog, Work(7));
}

TEST(DegenerateShapes, SeparationLargerThanBusyWindow) {
  // The busy window closes before any second release can occur: the
  // exploration sees only singleton paths.
  const DrtTask task = [] {
    DrtBuilder b("sparse");
    const VertexId v = b.add_vertex("V", Work(2), Time(100));
    b.add_edge(v, v, Time(1000));
    return std::move(b).build();
  }();
  const StructuralResult st =
      structural_delay(test::workspace(), task, Supply::dedicated(1));
  EXPECT_EQ(st.busy_window, Time(2));
  EXPECT_EQ(st.delay, Time(2));
  ASSERT_EQ(st.witness.size(), 1u);
}

TEST(DegenerateShapes, HugeWcetDoesNotOverflowSilently) {
  // Astronomic parameters must either work or throw OverflowError /
  // runtime_error -- never wrap around into a bogus bound.
  DrtBuilder b("huge");
  const VertexId v =
      b.add_vertex("V", Work(std::int64_t{1} << 40), Time(1));
  b.add_edge(v, v, Time(std::int64_t{1} << 41));
  const DrtTask task = std::move(b).build();
  try {
    const StructuralResult st =
        structural_delay(test::workspace(), task, Supply::dedicated(1));
    EXPECT_EQ(st.delay, Time(std::int64_t{1} << 40));
  } catch (const OverflowError&) {
  } catch (const std::runtime_error&) {
  }
}

}  // namespace
}  // namespace strt
