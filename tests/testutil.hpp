// Shared helpers for the strt test suite: dense brute-force reference
// implementations of the curve algebra, random curve/task generators.
#pragma once

#include <cstdint>
#include <vector>

#include "base/rng.hpp"
#include "base/types.hpp"
#include "curves/staircase.hpp"
#include "engine/workspace.hpp"
#include "graph/drt.hpp"

namespace strt::test {

/// One memoized workspace shared by a whole test binary.  The engine
/// contract guarantees analysis results are independent of workspace
/// warmth (enforced by test_engine_equivalence), so tests that only care
/// about *results* route their calls through this instance; tests that
/// probe cache behavior construct their own.
inline engine::Workspace& workspace() {
  static engine::Workspace w;
  return w;
}

/// Dense evaluation f(0..horizon) as a plain vector.
inline std::vector<std::int64_t> dense(const Staircase& f, Time horizon) {
  std::vector<std::int64_t> v(static_cast<std::size_t>(horizon.count()) + 1);
  for (std::int64_t t = 0; t <= horizon.count(); ++t) {
    v[static_cast<std::size_t>(t)] = f.value(Time(t)).count();
  }
  return v;
}

/// Brute-force min-plus convolution on dense vectors.
inline std::vector<std::int64_t> dense_conv(
    const std::vector<std::int64_t>& f, const std::vector<std::int64_t>& g) {
  const std::size_t n = f.size() + g.size() - 1;
  std::vector<std::int64_t> h(n);
  for (std::size_t t = 0; t < n; ++t) {
    std::int64_t best = std::numeric_limits<std::int64_t>::max();
    for (std::size_t s = 0; s < f.size() && s <= t; ++s) {
      if (t - s >= g.size()) continue;
      best = std::min(best, f[s] + g[t - s]);
    }
    h[t] = best;
  }
  return h;
}

/// Brute-force min-plus deconvolution on dense vectors; result length
/// f.size() - g.size() + 1, clamped at zero.
inline std::vector<std::int64_t> dense_deconv(
    const std::vector<std::int64_t>& f, const std::vector<std::int64_t>& g) {
  const std::size_t n = f.size() - g.size() + 1;
  std::vector<std::int64_t> h(n);
  for (std::size_t t = 0; t < n; ++t) {
    std::int64_t best = 0;
    for (std::size_t u = 0; u < g.size(); ++u) {
      best = std::max(best, f[t + u] - g[u]);
    }
    h[t] = best;
  }
  return h;
}

/// Brute-force discrete hdev: max over t >= 1 of inverse_b(a(t)) - (t-1).
inline std::int64_t dense_hdev(const std::vector<std::int64_t>& a,
                               const std::vector<std::int64_t>& b) {
  std::int64_t worst = 0;
  for (std::size_t t = 1; t < a.size(); ++t) {
    if (a[t] == 0) continue;
    std::size_t d = 0;
    while (d < b.size() && b[d] < a[t]) ++d;
    if (d >= b.size()) return -1;  // not reachable within b's horizon
    worst = std::max(worst, static_cast<std::int64_t>(d) -
                                (static_cast<std::int64_t>(t) - 1));
  }
  return worst;
}

/// Brute-force discrete vdev: max over t <= upto of a(t+1) - b(t).
inline std::int64_t dense_vdev(const std::vector<std::int64_t>& a,
                               const std::vector<std::int64_t>& b,
                               std::size_t upto) {
  std::int64_t worst = 0;
  for (std::size_t t = 0; t <= upto && t + 1 < a.size() && t < b.size();
       ++t) {
    worst = std::max(worst, a[t + 1] - b[t]);
  }
  return worst;
}

/// Random monotone staircase on [0, horizon] starting at 0.
inline Staircase random_staircase(Rng& rng, Time horizon,
                                  std::int64_t max_jump = 5,
                                  double step_prob = 0.3) {
  std::vector<Step> pts;
  std::int64_t v = 0;
  for (std::int64_t t = 1; t <= horizon.count(); ++t) {
    if (rng.chance(step_prob)) {
      v += rng.uniform_int(1, max_jump);
      pts.push_back(Step{Time(t), Work(v)});
    }
  }
  return Staircase::from_points(std::move(pts), horizon);
}

/// Two-vertex loop that passes the strt::check lint with zero
/// diagnostics: frame-separated (every deadline <= every outgoing
/// separation), strongly connected, utilization 1/5.
inline DrtTask clean_task() {
  DrtBuilder b("clean");
  const VertexId a = b.add_vertex("A", Work(2), Time(10));
  const VertexId c = b.add_vertex("B", Work(3), Time(12));
  b.add_edge(a, c, Time(10));
  b.add_edge(c, a, Time(15));
  return std::move(b).build();
}

/// A small fixed DRT task used across suites: heavy vertex A followed by
/// light vertices, a branch, and a cycle back.
///
///      A(e=4,d=10) --3--> B(e=1,d=5) --5--> C(e=2,d=8) --6--> A
///            \--4--> D(e=3,d=9) --7--> A
inline DrtTask small_task() {
  DrtBuilder b("small");
  const VertexId a = b.add_vertex("A", Work(4), Time(10));
  const VertexId bb = b.add_vertex("B", Work(1), Time(5));
  const VertexId c = b.add_vertex("C", Work(2), Time(8));
  const VertexId d = b.add_vertex("D", Work(3), Time(9));
  b.add_edge(a, bb, Time(3));
  b.add_edge(bb, c, Time(5));
  b.add_edge(c, a, Time(6));
  b.add_edge(a, d, Time(4));
  b.add_edge(d, a, Time(7));
  return std::move(b).build();
}

}  // namespace strt::test
