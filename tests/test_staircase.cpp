#include <gtest/gtest.h>

#include <sstream>

#include "base/assert.hpp"
#include "curves/staircase.hpp"
#include "testutil.hpp"

namespace strt {
namespace {

TEST(Staircase, ZeroCurve) {
  const Staircase z(Time(10));
  EXPECT_EQ(z.value(Time(0)), Work(0));
  EXPECT_EQ(z.value(Time(10)), Work(0));
  EXPECT_EQ(z.breakpoint_count(), 1u);
  EXPECT_TRUE(z.starts_at_zero());
}

TEST(Staircase, FromPointsCanonicalizes) {
  // Unsorted input, duplicate times, non-monotone values.
  const Staircase f = Staircase::from_points(
      {Step{Time(5), Work(3)}, Step{Time(2), Work(4)}, Step{Time(5), Work(2)},
       Step{Time(8), Work(4)}},
      Time(10));
  EXPECT_EQ(f.value(Time(0)), Work(0));
  EXPECT_EQ(f.value(Time(1)), Work(0));
  EXPECT_EQ(f.value(Time(2)), Work(4));
  EXPECT_EQ(f.value(Time(5)), Work(4));  // running max absorbs the dip
  EXPECT_EQ(f.value(Time(10)), Work(4));
  EXPECT_EQ(f.breakpoint_count(), 2u);  // (0,0) and (2,4)
}

TEST(Staircase, FromPointsRejectsBadInput) {
  EXPECT_THROW(
      (void)Staircase::from_points({Step{Time(11), Work(1)}}, Time(10)),
      std::invalid_argument);
  EXPECT_THROW(
      (void)Staircase::from_points({Step{Time(-1), Work(1)}}, Time(10)),
      std::invalid_argument);
  EXPECT_THROW(
      (void)Staircase::from_points({Step{Time(1), Work(-1)}}, Time(10)),
      std::invalid_argument);
}

TEST(Staircase, ValueOutsideDomainThrows) {
  const Staircase f(Time(10));
  EXPECT_THROW((void)f.value(Time(11)), std::invalid_argument);
  EXPECT_THROW((void)f.value(Time(-1)), std::invalid_argument);
}

TEST(Staircase, InverseWithinHorizon) {
  const Staircase f = Staircase::from_points(
      {Step{Time(2), Work(3)}, Step{Time(7), Work(8)}}, Time(10));
  EXPECT_EQ(f.inverse(Work(0)), Time(0));
  EXPECT_EQ(f.inverse(Work(1)), Time(2));
  EXPECT_EQ(f.inverse(Work(3)), Time(2));
  EXPECT_EQ(f.inverse(Work(4)), Time(7));
  EXPECT_EQ(f.inverse(Work(8)), Time(7));
  EXPECT_THROW((void)f.inverse(Work(9)), std::invalid_argument);
}

TEST(Staircase, TailEvaluation) {
  // f on [0,10]: jumps to 2 at t=3, to 5 at t=8; tail period 4 inc 3.
  const Staircase f =
      Staircase::from_points({Step{Time(3), Work(2)}, Step{Time(8), Work(5)}},
                             Time(10))
          .with_tail(Tail{Time(4), Work(3)});
  // t=11 folds to t=7 (+3): f(7)=2 -> 5.  t=12 folds to 8: 5+3=8.
  EXPECT_EQ(f.value(Time(11)), Work(5));
  EXPECT_EQ(f.value(Time(12)), Work(8));
  EXPECT_EQ(f.value(Time(16)), Work(11));  // two periods past 8
  // Monotone across the boundary.
  Work prev = f.value(Time(0));
  for (std::int64_t t = 1; t <= 40; ++t) {
    const Work cur = f.value(Time(t));
    EXPECT_GE(cur, prev) << "t=" << t;
    prev = cur;
  }
}

TEST(Staircase, TailInverse) {
  const Staircase f =
      Staircase::from_points({Step{Time(3), Work(2)}, Step{Time(8), Work(5)}},
                             Time(10))
          .with_tail(Tail{Time(4), Work(3)});
  for (std::int64_t w = 1; w <= 40; ++w) {
    const Time t = f.inverse(Work(w));
    ASSERT_FALSE(t.is_unbounded());
    EXPECT_GE(f.value(t), Work(w));
    if (t > Time(0)) {
      EXPECT_LT(f.value(t - Time(1)), Work(w));
    }
  }
}

TEST(Staircase, TailZeroIncrementInverseUnbounded) {
  const Staircase f =
      Staircase::from_points({Step{Time(1), Work(2)}}, Time(10))
          .with_tail(Tail{Time(5), Work(0)});
  EXPECT_EQ(f.inverse(Work(3)), Time::unbounded());
  EXPECT_EQ(f.inverse(Work(2)), Time(1));
}

TEST(Staircase, BadTailRejected) {
  const Staircase f =
      Staircase::from_points({Step{Time(9), Work(5)}}, Time(10));
  // Extension would decrease: f(11) = f(11-4) + 0 = f(7) + 0 = 0 < f(10).
  EXPECT_THROW((void)f.with_tail(Tail{Time(4), Work(0)}), InternalError);
  EXPECT_THROW((void)f.with_tail(Tail{Time(11), Work(1)}), InternalError);
  EXPECT_THROW((void)f.with_tail(Tail{Time(0), Work(1)}), InternalError);
}

TEST(Staircase, ExtendedMaterializesTail) {
  const Staircase f =
      Staircase::from_points({Step{Time(3), Work(2)}}, Time(5))
          .with_tail(Tail{Time(5), Work(2)});
  const Staircase g = f.extended(Time(20));
  EXPECT_EQ(g.horizon(), Time(20));
  for (std::int64_t t = 0; t <= 20; ++t) {
    EXPECT_EQ(g.value(Time(t)), f.value(Time(t))) << "t=" << t;
  }
  EXPECT_TRUE(g.tail().has_value());
}

TEST(Staircase, ExtendedWithoutTailThrows) {
  const Staircase f(Time(5));
  EXPECT_THROW((void)f.extended(Time(10)), std::invalid_argument);
  EXPECT_EQ(f.extended(Time(5)).horizon(), Time(5));  // no-op is fine
}

TEST(Staircase, Truncated) {
  const Staircase f = Staircase::from_points(
      {Step{Time(2), Work(1)}, Step{Time(6), Work(4)}}, Time(10));
  const Staircase g = f.truncated(Time(4));
  EXPECT_EQ(g.horizon(), Time(4));
  EXPECT_EQ(g.value(Time(4)), Work(1));
  EXPECT_EQ(g.breakpoint_count(), 2u);
  EXPECT_THROW((void)f.truncated(Time(11)), std::invalid_argument);
}

TEST(Staircase, ShiftedRight) {
  const Staircase f = Staircase::from_points(
      {Step{Time(1), Work(2)}, Step{Time(4), Work(5)}}, Time(6));
  const Staircase g = f.shifted_right(Time(3));
  EXPECT_EQ(g.horizon(), Time(9));
  EXPECT_EQ(g.value(Time(0)), Work(0));
  EXPECT_EQ(g.value(Time(3)), Work(0));
  EXPECT_EQ(g.value(Time(4)), Work(2));
  EXPECT_EQ(g.value(Time(7)), Work(5));
}

TEST(Staircase, PlusConstantAndScaled) {
  const Staircase f =
      Staircase::from_points({Step{Time(2), Work(3)}}, Time(5));
  EXPECT_EQ(f.plus_constant(Work(2)).value(Time(0)), Work(2));
  EXPECT_EQ(f.plus_constant(Work(2)).value(Time(3)), Work(5));
  EXPECT_EQ(f.scaled(3).value(Time(3)), Work(9));
  EXPECT_EQ(f.scaled(0).value(Time(3)), Work(0));
}

TEST(Staircase, SubadditivityCheck) {
  // f(t) = 2*ceil(t/5) is subadditive.
  const Staircase sub = Staircase::from_points(
      {Step{Time(1), Work(2)}, Step{Time(6), Work(4)},
       Step{Time(11), Work(6)}},
      Time(15));
  EXPECT_TRUE(sub.is_subadditive());
  // A convex ramp is not: f(2) = 5 > 2 * f(1) = 2.
  const Staircase super = Staircase::from_points(
      {Step{Time(1), Work(1)}, Step{Time(2), Work(5)}}, Time(5));
  EXPECT_FALSE(super.is_subadditive());
}

TEST(Staircase, EqualityAndPrint) {
  const Staircase f =
      Staircase::from_points({Step{Time(2), Work(3)}}, Time(5));
  const Staircase g =
      Staircase::from_points({Step{Time(2), Work(3)}}, Time(5));
  EXPECT_EQ(f, g);
  EXPECT_NE(f, f.truncated(Time(4)));
  std::ostringstream os;
  os << f;
  EXPECT_NE(os.str().find("(2,3)"), std::string::npos);
}

TEST(Staircase, ScaledPreservesTail) {
  const Staircase f =
      Staircase::from_points({Step{Time(2), Work(3)}}, Time(6))
          .with_tail(Tail{Time(3), Work(1)});
  const Staircase g = f.scaled(4);
  ASSERT_TRUE(g.tail().has_value());
  EXPECT_EQ(g.tail()->increment, Work(4));
  for (std::int64_t t = 0; t <= 20; ++t) {
    EXPECT_EQ(g.value(Time(t)), f.value(Time(t)) * 4) << t;
  }
  const Staircase z = f.scaled(0);
  ASSERT_TRUE(z.tail().has_value());
  EXPECT_EQ(z.value(Time(19)), Work(0));
}

TEST(Staircase, RandomInverseRoundTrip) {
  Rng rng(99);
  for (int trial = 0; trial < 25; ++trial) {
    const Staircase f = test::random_staircase(rng, Time(60));
    const Work top = f.value_at_horizon();
    for (std::int64_t w = 0; w <= top.count(); ++w) {
      const Time t = f.inverse(Work(w));
      EXPECT_GE(f.value(t), Work(w));
      if (t > Time(0)) {
      EXPECT_LT(f.value(t - Time(1)), Work(w));
    }
    }
  }
}

}  // namespace
}  // namespace strt
