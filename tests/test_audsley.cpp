#include <gtest/gtest.h>

#include <algorithm>

#include "core/audsley.hpp"
#include "core/fixed_priority.hpp"
#include "model/generator.hpp"
#include "model/sporadic.hpp"
#include "testutil.hpp"

namespace strt {
namespace {

/// FP acceptance of a *given* order under the per-vertex verdict.
bool order_feasible(const std::vector<DrtTask>& tasks, const Supply& supply) {
  StructuralOptions opts;
  opts.want_witness = false;
  const FpResult res = fixed_priority_analysis(test::workspace(), tasks, supply, opts);
  if (res.overloaded) return false;
  for (std::size_t i = 0; i < tasks.size(); ++i) {
    Time worst(0);
    // Reconstruct the verdict from the per-task structural delay vs each
    // vertex deadline via a fresh analysis (FpTaskResult keeps only the
    // max); simplest: delay <= min vertex deadline is sufficient here.
    Time min_d = Time::unbounded();
    for (const DrtVertex& v : tasks[i].vertices()) min_d = min(min_d, v.deadline);
    worst = res.tasks[i].structural_delay;
    if (worst > min_d) return false;
  }
  return true;
}

TEST(Audsley, FindsOrderForClassicSet) {
  std::vector<DrtTask> tasks;
  tasks.push_back(SporadicTask{"slow", Work(3), Time(20), Time(20)}.to_drt());
  tasks.push_back(SporadicTask{"fast", Work(1), Time(4), Time(4)}.to_drt());
  // Given in the "wrong" order (slow first); Audsley must still succeed
  // and must put the tight task higher.
  const AudsleyResult res =
      audsley_assignment(test::workspace(), tasks, Supply::dedicated(1));
  ASSERT_TRUE(res.feasible);
  ASSERT_EQ(res.order.size(), 2u);
  EXPECT_EQ(res.order[0], 1u);  // "fast" gets the higher priority
  EXPECT_EQ(res.order[1], 0u);
}

TEST(Audsley, InfeasibleOnOverload) {
  std::vector<DrtTask> tasks;
  tasks.push_back(SporadicTask{"a", Work(3), Time(4), Time(4)}.to_drt());
  tasks.push_back(SporadicTask{"b", Work(3), Time(4), Time(4)}.to_drt());
  const AudsleyResult res =
      audsley_assignment(test::workspace(), tasks, Supply::dedicated(1));
  EXPECT_FALSE(res.feasible);
}

TEST(Audsley, InfeasibleWhenNoTaskFitsAtTheBottom) {
  // Two tasks that each fit alone but neither survives the other's full
  // interference within its deadline.
  std::vector<DrtTask> tasks;
  tasks.push_back(SporadicTask{"a", Work(3), Time(8), Time(4)}.to_drt());
  tasks.push_back(SporadicTask{"b", Work(3), Time(8), Time(4)}.to_drt());
  const AudsleyResult res =
      audsley_assignment(test::workspace(), tasks, Supply::dedicated(1));
  // Lowest-priority candidate sees 3 + 3 = 6 > 4 in the worst case.
  EXPECT_FALSE(res.feasible);
}

TEST(Audsley, ResultOrderActuallyPasses) {
  Rng rng(434343);
  int found = 0;
  while (found < 5) {
    DrtGenParams params;
    params.min_vertices = 2;
    params.max_vertices = 4;
    params.min_separation = Time(10);
    params.max_separation = Time(40);
    params.deadline_factor = 1.0;
    auto gen = random_drt_set(rng, 3, 0.5, params);
    std::vector<DrtTask> tasks;
    for (auto& g : gen) tasks.push_back(std::move(g.task));
    const Supply supply = Supply::dedicated(1);
    const AudsleyResult res = audsley_assignment(test::workspace(), tasks, supply);
    if (!res.feasible) continue;
    ++found;
    // Apply the order and verify with the independent FP analysis (using
    // the conservative min-deadline criterion, implied by per-vertex).
    std::vector<DrtTask> ordered;
    for (const std::size_t i : res.order) ordered.push_back(tasks[i]);
    StructuralOptions opts;
    opts.want_witness = false;
    const FpResult fp = fixed_priority_analysis(test::workspace(), ordered, supply, opts);
    ASSERT_FALSE(fp.overloaded);
    // The per-vertex criterion implies each task's own jobs meet their
    // deadlines under the leftover; re-check with structural_delay_vs via
    // the library's own FP result consistency: delay bounds finite.
    for (const FpTaskResult& t : fp.tasks) {
      EXPECT_FALSE(t.structural_delay.is_unbounded());
    }
  }
}

TEST(Audsley, DominatesAnyFixedOrderOnRandomSets) {
  // Whenever some tested order is feasible, Audsley must also declare
  // feasibility (optimality of the bottom-up assignment).
  Rng rng(565656);
  int audsley_only = 0;
  for (int trial = 0; trial < 12; ++trial) {
    DrtGenParams params;
    params.min_vertices = 2;
    params.max_vertices = 3;
    params.min_separation = Time(8);
    params.max_separation = Time(30);
    params.deadline_factor = 1.0;
    auto gen = random_drt_set(rng, 3, 0.6, params);
    std::vector<DrtTask> tasks;
    for (auto& g : gen) tasks.push_back(std::move(g.task));
    const Supply supply = Supply::dedicated(1);

    const AudsleyResult aud = audsley_assignment(test::workspace(), tasks, supply);
    // Try all 6 permutations with the conservative min-deadline check.
    std::vector<std::size_t> perm{0, 1, 2};
    bool any_order = false;
    std::sort(perm.begin(), perm.end());
    do {
      std::vector<DrtTask> ordered;
      for (const std::size_t i : perm) ordered.push_back(tasks[i]);
      if (order_feasible(ordered, supply)) any_order = true;
    } while (std::next_permutation(perm.begin(), perm.end()));

    if (any_order) {
      EXPECT_TRUE(aud.feasible) << "trial " << trial;
    }
    if (aud.feasible && !any_order) ++audsley_only;
  }
  // Audsley with the per-vertex criterion may accept sets the coarse
  // min-deadline permutation check rejects; that is fine (it is the
  // sharper criterion).  Nothing to assert beyond the implication above.
  (void)audsley_only;
}

}  // namespace
}  // namespace strt
